#include "api/engine.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "alloc/slice_alloc.hpp"
#include "analysis/dataflow.hpp"
#include "analysis/memory_access.hpp"
#include "api/json.hpp"
#include "common/rng.hpp"
#include "fp/format.hpp"
#include "ir/parser.hpp"
#include "ir/verifier.hpp"
#include "quality/degradation.hpp"
#include "rf/fault_map.hpp"

namespace gpurf {

namespace {

EngineOptions resolve(EngineOptions o) {
  // Environment variables act as defaults only, consulted exactly once
  // here; after construction the Engine never touches the environment.
  if (o.threads <= 0) o.threads = common::default_thread_count();
  if (o.cache_dir.empty()) o.cache_dir = workloads::default_cache_dir();
  if (o.tuner.speculate_batch <= 0) o.tuner.speculate_batch = o.threads;
  if (o.sim_shards <= 0) o.sim_shards = o.threads;
  if (o.async_workers <= 0) o.async_workers = o.threads;
  if (o.max_inflight == 0)
    o.max_inflight = 2 * static_cast<size_t>(o.async_workers);
  if (o.job_id_start == 0) o.job_id_start = 1;
  if (o.job_id_stride == 0) o.job_id_stride = 1;
  o.run.thread_insts = nullptr;
  // Cancellation tokens are per-job, never session-wide configuration.
  o.run.cancel = nullptr;
  o.tuner.cancel = nullptr;
  return o;
}

workloads::PipelineOptions pipeline_options(const EngineOptions& o,
                                            workloads::PipelineStats* stats) {
  workloads::PipelineOptions p;
  p.use_disk_cache = o.use_disk_cache;
  p.cache_dir = o.cache_dir;
  p.tuner = o.tuner;
  p.run = o.run;
  p.stats = stats;
  return p;
}

/// Map a cooperative stop to the Status the serving layer reports.
Status stop_status(const common::CancelledError& e, const std::string& what) {
  return e.reason() == common::StopReason::kDeadline
             ? Status::DeadlineExceeded(what + ": " + e.what())
             : Status::Cancelled(what + ": " + e.what());
}

/// Terminal JobState matching a terminal Status.
JobState terminal_state_for(const Status& st) {
  switch (st.code()) {
    case StatusCode::kCancelled: return JobState::kCancelled;
    case StatusCode::kDeadlineExceeded: return JobState::kDeadlineExceeded;
    default: return JobState::kDone;  // success or ordinary failure
  }
}

uint64_t wall_us_since(detail::JobImpl::Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          detail::JobImpl::Clock::now() - start)
          .count());
}

}  // namespace

Engine::Engine(EngineOptions opts)
    : opts_(resolve(std::move(opts))),
      pool_(opts_.threads),
      pipelines_(pipeline_options(opts_, &pipeline_stats_)),
      registry_(workloads::make_all_workloads()) {
  next_job_id_ = opts_.job_id_start;
}

Engine::~Engine() {
  {
    common::MutexLock lock(qmu_);
    stopping_ = true;
    qcv_.notify_all();
    slot_cv_.notify_all();
  }
  // Campaign orchestrators first: a stopping campaign cancels its child
  // jobs (further child submits throw), and the executors below then
  // drain and finalize those children before exiting.
  for (auto& t : campaign_threads_) t.join();
  for (auto& t : executors_) t.join();
}

Engine& Engine::shared() {
  static Engine engine;
  return engine;
}

std::vector<std::string> Engine::workload_names() const {
  std::vector<std::string> names;
  names.reserve(registry_.size());
  for (const auto& w : registry_) names.push_back(w->spec().name);
  return names;
}

StatusOr<const workloads::Workload*> Engine::workload(
    std::string_view name) const {
  for (const auto& w : registry_)
    if (w->spec().name == name) return static_cast<const workloads::Workload*>(w.get());
  return Status::NotFound("unknown workload '" + std::string(name) +
                          "'; known: " + [this] {
                            std::string s;
                            for (const auto& w : registry_) {
                              if (!s.empty()) s += ", ";
                              s += w->spec().name;
                            }
                            return s;
                          }());
}

StatusOr<const workloads::PipelineResult*> Engine::pipeline_impl(
    const workloads::Workload& w, common::CancelToken* cancel) {
  Scope scope(*this);
  // gpurf::Error is the core's recoverable, input-dependent tier
  // (GPURF_CHECK) — e.g. a workload whose metric fails at full precision —
  // so it maps to FailedPrecondition; a cooperative stop maps to
  // kCancelled / kDeadlineExceeded; anything else escaping the core is
  // Internal.  GPURF_ASSERT (state corruption) still aborts by design.
  try {
    // Tune-stage latency (ISSUE 8): the memo get covers the whole tuning
    // path on a miss and a map lookup on a hit, so fingerprint-affine
    // routing shows up directly as a microsecond-bucket p50.
    const auto t0 = detail::JobImpl::Clock::now();
    const workloads::PipelineResult* pr = &pipelines_.get(w, cancel);
    metrics_.tune_hist.record_us(wall_us_since(t0));
    return pr;
  } catch (const common::CancelledError& e) {
    return stop_status(e, std::string("pipeline '") + w.spec().name + "'");
  } catch (const Error& e) {
    return Status::FailedPrecondition(std::string("pipeline '") +
                                      w.spec().name + "': " + e.what());
  } catch (const std::exception& e) {
    return Status::Internal(std::string("pipeline '") + w.spec().name +
                            "': " + e.what());
  }
}

StatusOr<const workloads::PipelineResult*> Engine::pipeline(
    const workloads::Workload& w) {
  return pipeline_impl(w, nullptr);
}

StatusOr<const workloads::PipelineResult*> Engine::pipeline(
    std::string_view name) {
  auto w = workload(name);
  if (!w.ok()) return w.status();
  return pipeline(**w);
}

StatusOr<workloads::PipelineResult> Engine::compute_pipeline(
    const workloads::Workload& w) {
  Scope scope(*this);
  workloads::PipelineOptions opt = pipelines_.options();
  opt.use_disk_cache = false;
  try {
    return workloads::compute_pipeline(w, opt);
  } catch (const Error& e) {
    return Status::FailedPrecondition(std::string("pipeline '") +
                                      w.spec().name + "': " + e.what());
  } catch (const std::exception& e) {
    return Status::Internal(std::string("pipeline '") + w.spec().name +
                            "': " + e.what());
  }
}

StatusOr<std::string> Engine::pipeline_json(std::string_view name) {
  auto pr = pipeline(name);
  if (!pr.ok()) return pr.status();
  return api::to_json(**pr);
}

StatusOr<sim::SimResult> Engine::simulate_impl(const workloads::Workload& w,
                                               const SimRequest& req,
                                               common::CancelToken* cancel) {
  if (req.variant >= w.num_sample_variants() &&
      req.scale == workloads::Scale::kSample)
    return Status::InvalidArgument(
        "variant " + std::to_string(req.variant) + " out of range for '" +
        w.spec().name + "'");
  const bool inject = req.fault.density > 0.0;
  if (inject && req.mode == workloads::SimMode::kOriginal)
    return Status::InvalidArgument(
        "fault injection on '" + w.spec().name +
        "' requires a compressed mode (faults live in the compressed "
        "register file)");
  auto pr = pipeline_impl(w, cancel);
  if (!pr.ok()) return pr.status();

  Scope scope(*this);
  try {
    if (cancel) {
      cancel->set_stage(common::JobStage::kSimulating);
      cancel->checkpoint();
    }
    auto inst = w.make_instance(req.scale, req.variant);
    auto spec = workloads::make_launch_spec(w, inst, **pr, req.mode);
    spec.soft = req.soft;
    const sim::CompressionConfig comp =
        req.compression ? *req.compression
                        : workloads::make_compression_config(req.mode);
    sim::SimOptions so;
    so.shards = req.sim_shards > 0 ? req.sim_shards : opts_.sim_shards;
    // Static disjointness gate (ISSUE 10): multi-SM sharding executes all
    // blocks against one shared GlobalMemory, so it requires the sharded
    // memory contract (no cross-block reads, no overlapping stores).  The
    // contract is now proven per launch by the memory-access prover — or
    // waived by the workload spec — instead of assumed; unproven kernels
    // fall back to the bit-identical serial schedule (SimStats are
    // shard-count-invariant, so the clamp never changes results).
    if (so.shards > 1 && !w.mem_proofs(inst, /*footprints=*/true)->shard_ok)
      so.shards = 1;

    // Soft-error quality scoring (PR 7) needs the pristine inputs kept
    // aside: the timing sim executes functionally against inst.gmem, so
    // the flipped run's architectural output is read back from it after
    // the simulation.
    const bool soft_quality = req.soft_score_quality && req.soft.enabled();
    std::optional<workloads::Workload::Instance> pristine;
    if (soft_quality) pristine = inst;
    auto score_soft = [&](sim::SimResult& result,
                          const exec::PrecisionMap* pmap) {
      // Two functional replays score the flipped output: exact reference
      // and flip-free tuned run (the flipped output itself comes from the
      // simulated memory image).
      const auto metric = w.make_metric(inst);
      workloads::RunOptions ro = opts_.run;
      ro.cancel = cancel;
      auto ref_inst = *pristine;
      const auto ref = w.run(ref_inst, nullptr, nullptr, ro);
      auto ff_inst = *pristine;
      const auto flip_free = w.run(ff_inst, pmap, nullptr, ro);
      const auto flipped = inst.gmem.read_f32(inst.out_base, inst.out_words);
      result.soft.quality_scored = true;
      result.soft.quality_fault_free = metric->score(ref, flip_free);
      result.soft.quality_faulty = metric->score(ref, flipped);
      result.soft.quality_delta = quality::degradation_delta(
          metric->kind(), result.soft.quality_fault_free,
          result.soft.quality_faulty);
    };

    if (!inject) {
      const auto t0 = detail::JobImpl::Clock::now();
      sim::SimResult result = sim::simulate(opts_.gpu, comp, spec, cancel, so);
      metrics_.sim_hist.record_us(wall_us_since(t0));
      if (soft_quality) score_soft(result, spec.precision);
      return result;
    }

    // Fault injection (PR 6): generate the deterministic map, re-run the
    // slice allocator fault-aware (redirection + graceful spill) and
    // swap the launch's allocation for the redirected one.  The memoized
    // pipeline stays untouched — fault-free requests keep serving its
    // bit-identical allocation.
    const rf::FaultMap fm =
        rf::FaultMap::generate(req.fault.seed, req.fault.density);
    const auto& tune = req.mode == workloads::SimMode::kCompressedPerfect
                           ? (*pr)->tune_perfect
                           : (*pr)->tune_high;
    alloc::AllocOptions aopt;
    aopt.faults = &fm;
    alloc::AllocationResult fa = alloc::allocate_slices(
        w.kernel(), &(*pr)->ranges, &tune.pmap, aopt);

    // Fault-aware re-tuning (PR 7): only a map with actual faults that
    // either spills or inflates register pressure past the SM's capacity
    // ever re-tunes — the zero-fault path keeps the cached tuning
    // bit-identical.  Slice budgets are tried widest first and candidates
    // compete lexicographically on (fits on the SM, spill count): a
    // narrow budget that merely trades spills for an infeasible register
    // pressure is never adopted, and when the unconstrained allocation
    // itself no longer fits, any fitting budget wins.  Strict improvement
    // is required, so ties keep the wider budget (better quality at equal
    // storage success).
    const auto fits = [&](const alloc::AllocationResult& a) {
      return sim::compute_occupancy(opts_.gpu, a.total_phys_regs(),
                                    spec.launch.warps_per_block(),
                                    w.kernel().shared_bytes)
                 .blocks_per_sm > 0;
    };
    const exec::PrecisionMap* used_pmap = &tune.pmap;
    const uint32_t spills_before = fa.registers_spilled;
    tuning::TuneResult retuned_tr;
    bool retuned = false;
    uint32_t retune_budget = 0;
    bool cur_fits = fits(fa);
    if (req.retune_on_faults && fm.num_faults() > 0 &&
        (fa.registers_spilled > 0 || !cur_fits)) {
      if (cancel) cancel->set_stage(common::JobStage::kTuning);
      workloads::RunOptions ro = opts_.run;
      ro.cancel = cancel;
      auto probe = workloads::make_workload_probe(w, ro);
      tuning::TunerOptions topt = opts_.tuner;
      topt.level = req.mode == workloads::SimMode::kCompressedPerfect
                       ? quality::QualityLevel::kPerfect
                       : quality::QualityLevel::kHigh;
      topt.cancel = cancel;
      topt.defer_validation = false;
      for (int hint : {4, 2, 1}) {
        topt.max_slices_hint = hint;
        tuning::TuneResult tr =
            tuning::tune_precision(w.kernel(), *probe, topt);
        alloc::AllocationResult fa2 = alloc::allocate_slices(
            w.kernel(), &(*pr)->ranges, &tr.pmap, aopt);
        const bool new_fits = fits(fa2);
        const bool better =
            new_fits != cur_fits
                ? new_fits
                : fa2.registers_spilled < fa.registers_spilled;
        if (better) {
          fa = std::move(fa2);
          retuned_tr = std::move(tr);
          used_pmap = &retuned_tr.pmap;
          retuned = true;
          retune_budget = static_cast<uint32_t>(hint);
          cur_fits = new_fits;
        }
        if (cur_fits && fa.registers_spilled == 0) break;
      }
      if (cancel) cancel->set_stage(common::JobStage::kSimulating);
    }

    // Spilled f32 registers live full-width in the spill store, so the
    // interpreter must not quantize them.
    exec::PrecisionMap adj = *used_pmap;
    if (adj.active())
      for (uint32_t r = 0;
           r < fa.table.size() && r < adj.per_reg.size(); ++r)
        if (fa.table[r].valid && fa.table[r].spilled)
          adj.per_reg[r] = fp::format_for_bits(32);
    spec.allocation = &fa;
    spec.regs_per_thread = fa.total_phys_regs();
    spec.precision = &adj;

    const auto sim_t0 = detail::JobImpl::Clock::now();
    sim::SimResult result = sim::simulate(opts_.gpu, comp, spec, cancel, so);
    metrics_.sim_hist.record_us(wall_us_since(sim_t0));
    sim::FaultInjectionReport& rep = result.fault;
    rep.active = true;
    rep.seed = req.fault.seed;
    rep.density = fm.density();
    rep.faults_total = static_cast<uint32_t>(fm.num_faults());
    rep.faults_in_footprint = fa.faulty_slices_avoided;
    rep.registers_redirected = fa.registers_redirected;
    rep.registers_spilled = fa.registers_spilled;
    rep.spill_regs = fa.spill_regs;
    rep.coverage_pct = fa.fault_coverage_pct();
    rep.retuned = retuned;
    rep.retune_slice_budget = retune_budget;
    if (req.retune_on_faults) rep.spills_before_retune = spills_before;

    if (req.fault.score_quality) {
      // Three sample-scale functional runs score output degradation:
      // exact reference, fault-free tuned, faulty-redirected.
      // Redirection never changes numerics and spilled registers revert
      // to full precision, so the delta is expected <= 0 ("no worse") —
      // measured rather than asserted, which is the point of the report.
      auto qinst = w.make_instance(workloads::Scale::kSample, 0);
      const auto metric = w.make_metric(qinst);
      workloads::RunOptions ro = opts_.run;
      ro.cancel = cancel;
      auto ref_inst = qinst;
      const auto ref = w.run(ref_inst, nullptr, nullptr, ro);
      auto ff_inst = qinst;
      const auto fault_free = w.run(ff_inst, &tune.pmap, nullptr, ro);
      auto fy_inst = std::move(qinst);
      const auto faulty = w.run(fy_inst, &adj, nullptr, ro);
      rep.quality_scored = true;
      rep.quality_fault_free = metric->score(ref, fault_free);
      rep.quality_faulty = metric->score(ref, faulty);
      rep.quality_delta = quality::degradation_delta(
          metric->kind(), rep.quality_fault_free, rep.quality_faulty);
    }
    if (soft_quality) score_soft(result, &adj);
    return result;
  } catch (const common::CancelledError& e) {
    return stop_status(e, std::string("simulate '") + w.spec().name + "'");
  } catch (const Error& e) {
    return Status::FailedPrecondition(std::string("simulate '") +
                                      w.spec().name + "': " + e.what());
  } catch (const std::exception& e) {
    return Status::Internal(std::string("simulate '") + w.spec().name +
                            "': " + e.what());
  }
}

StatusOr<sim::SimResult> Engine::simulate(const workloads::Workload& w,
                                          const SimRequest& req) {
  return simulate_impl(w, req, nullptr);
}

StatusOr<sim::SimResult> Engine::simulate(std::string_view name,
                                          const SimRequest& req) {
  auto w = workload(name);
  if (!w.ok()) return w.status();
  return simulate(**w, req);
}

StatusOr<ir::Kernel> Engine::parse_kernel(std::string_view asm_text) const {
  try {
    return ir::parse_kernel(asm_text);
  } catch (const Error& e) {
    return Status::InvalidArgument(std::string("parse: ") + e.what());
  }
}

Status Engine::verify_kernel(const ir::Kernel& k,
                             bool allow_undefined_reads) const {
  try {
    ir::verify(k);
    if (!allow_undefined_reads) {
      // Dataflow enforcement (PR 9): surface entry-live-in registers as
      // verification failures instead of silently reading zeros.  Computed
      // directly (not via the analysis cache) — verification is one-shot
      // and must not pin transient kernels in the memo.
      const auto cfg = analysis::build_cfg(k);
      const auto live = analysis::compute_liveness(k, cfg);
      if (!live.undefined_uses.empty()) {
        std::string msg = std::string("verify '") + k.name +
                          "': undefined register read:";
        for (uint32_t r : live.undefined_uses)
          msg += std::string(" %") + k.regs[r].name;
        msg += " (use Engine::analyze for the full report, or "
               "allow_undefined_reads to bypass)";
        return Status::FailedPrecondition(msg);
      }
    }
    return Status::Ok();
  } catch (const Error& e) {
    return Status::FailedPrecondition(std::string("verify '") + k.name +
                                      "': " + e.what());
  }
}

StatusOr<analysis::KernelReport> Engine::analyze(const ir::Kernel& k) {
  Scope scope(*this);
  try {
    const auto ka = exec::analyze_kernel(k);
    analysis::KernelReport rep =
        analysis::build_kernel_report(k, ka->cfg(), ka->dataflow());
    rep.alloc_pressure = alloc::baseline_pressure(k);
    rep.live_interval_pressure = alloc::live_interval_pressure(k);
    // Static memory section without instance context: shared-memory OOB
    // classification only (gmem_words = 0), no footprint solves — a bare
    // kernel has no meaningful grid to prove disjointness over.
    analysis::MemoryAccessOptions mo;
    mo.footprints = false;
    const auto ma = analysis::analyze_memory_accesses(k, ir::LaunchConfig{}, mo);
    const uint64_t shw = analysis::shared_words(k);
    analysis::apply_memory_findings(rep, ma, analysis::prove_in_bounds(ma, 0, shw),
                                    0, shw, /*waived=*/false);
    return rep;
  } catch (const Error& e) {
    return Status::FailedPrecondition(std::string("analyze '") + k.name +
                                      "': " + e.what());
  } catch (const std::exception& e) {
    return Status::Internal(std::string("analyze '") + k.name + "': " +
                            e.what());
  }
}

StatusOr<analysis::KernelReport> Engine::analyze(const workloads::Workload& w) {
  auto rep = analyze(w.kernel());
  if (!rep.ok()) return rep;
  try {
    // Re-classify with full instance context: the sample instance's launch
    // geometry, parameter words and memory image are exactly what replay
    // runs against, so the findings and verdicts describe real executions.
    auto inst = w.make_instance(workloads::Scale::kSample, 0);
    const auto proofs = w.mem_proofs(inst, /*footprints=*/true);
    analysis::apply_memory_findings(
        *rep, proofs->mem, proofs->proven, proofs->gmem_words,
        analysis::shared_words(w.kernel()), w.spec().assume_disjoint);
  } catch (const Error& e) {
    return Status::FailedPrecondition(std::string("analyze '") +
                                      w.spec().name + "': " + e.what());
  } catch (const std::exception& e) {
    return Status::Internal(std::string("analyze '") + w.spec().name +
                            "': " + e.what());
  }
  return rep;
}

StatusOr<analysis::KernelReport> Engine::analyze(std::string_view name) {
  auto w = workload(name);
  if (!w.ok()) return w.status();
  return analyze(**w);
}

StatusOr<tuning::TuneResult> Engine::tune(const ir::Kernel& k,
                                          tuning::QualityProbe& probe,
                                          quality::QualityLevel level) {
  Scope scope(*this);
  tuning::TunerOptions topt = opts_.tuner;
  topt.level = level;
  topt.defer_validation = false;
  try {
    return tuning::tune_precision(k, probe, topt);
  } catch (const Error& e) {
    return Status::FailedPrecondition(std::string("tune '") + k.name +
                                      "': " + e.what());
  }
}

// ----------------------------------------------------------------- Job API

void Engine::ensure_executor() {
  common::MutexLock lock(qmu_);
  if (executor_started_) return;
  executor_started_ = true;
  executors_.reserve(static_cast<size_t>(opts_.async_workers));
  for (int t = 0; t < opts_.async_workers; ++t)
    executors_.emplace_back([this] { executor_loop(); });
}

Job Engine::submit(JobRequest req) {
  auto impl = std::make_shared<detail::JobImpl>();
  impl->req = std::move(req);
  impl->submitted_at = detail::JobImpl::Clock::now();
  std::optional<detail::JobImpl::Clock::time_point> deadline;
  if (impl->req.deadline_ms > 0) {
    deadline = impl->submitted_at +
               std::chrono::milliseconds(impl->req.deadline_ms);
    impl->token.set_deadline(*deadline);
  }
  ensure_executor();

  if (job_kind_campaign(impl->req.kind)) {
    // Campaigns bypass the executor queue and its in-flight accounting:
    // the orchestrator is a coordinator that mostly waits on the child
    // simulate jobs it submits (those children take normal slots, so a
    // large campaign self-throttles against max_inflight).  Running the
    // coordinator on an executor worker could deadlock a width-1 pool.
    common::MutexLock lock(qmu_);
    metrics_.jobs_submitted.fetch_add(1, std::memory_order_relaxed);
    GPURF_CHECK(!stopping_, "submit on a stopping Engine");
    impl->id = next_job_id_;
    next_job_id_ += opts_.job_id_stride;
    evict_terminal_jobs_locked();
    jobs_[impl->id] = impl;
    campaign_threads_.emplace_back([this, impl] {
      if (impl->req.kind == JobKind::kFaultCampaign)
        run_campaign(impl);
      else
        run_transient_campaign(impl);
    });
    return Job(impl);
  }

  bool rejected = false;
  {
    common::MutexLock lock(qmu_);
    metrics_.jobs_submitted.fetch_add(1, std::memory_order_relaxed);
    // Bounded in-flight set.  Without a deadline this is pure
    // backpressure (block until a slot frees, as before).  With one, the
    // wait gives up at the deadline — the request's time budget covers
    // queue admission too, so a saturated Engine sheds late work instead
    // of blocking its callers indefinitely (ISSUE 4 satellite).
    // (The predicate runs with qmu_ held inside the wait; it is a separate
    // function to the thread safety analysis, hence the opt-out.)
    auto has_slot = [&]() GPURF_NO_THREAD_SAFETY_ANALYSIS {
      return stopping_ || inflight_ < opts_.max_inflight;
    };
    if (deadline) {
      if (!slot_cv_.wait_until(lock.native(), *deadline, has_slot))
        rejected = true;
    } else {
      slot_cv_.wait(lock.native(), has_slot);
    }
    GPURF_CHECK(!stopping_, "submit on a stopping Engine");
    impl->id = next_job_id_;
    next_job_id_ += opts_.job_id_stride;
    evict_terminal_jobs_locked();
    jobs_[impl->id] = impl;
    if (!rejected) {
      ++inflight_;
      queue_.push_back(impl);
      qcv_.notify_one();
    }
  }
  if (rejected) {
    metrics_.record_terminal(JobState::kDeadlineExceeded, false,
                             wall_us_since(impl->submitted_at));
    impl->finalize(JobState::kDeadlineExceeded,
                   Status::DeadlineExceeded(
                       "no in-flight slot before the deadline (queue full)"));
  }
  return Job(impl);
}

StatusOr<Job> Engine::find_job(uint64_t id) const {
  common::MutexLock lock(qmu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end())
    return Status::NotFound("no job with id " + std::to_string(id));
  return Job(it->second);
}

void Engine::evict_terminal_jobs_locked() {
  if (jobs_.size() < kMaxRetainedJobs) return;
  std::vector<uint64_t> terminal_ids;
  for (const auto& [id, j] : jobs_) {
    std::lock_guard<std::mutex> lk(j->mu);
    if (job_state_terminal(j->state)) terminal_ids.push_back(id);
  }
  std::sort(terminal_ids.begin(), terminal_ids.end());
  // Evict in a batch (down to 3/4 of the cap, oldest first) so a daemon
  // sitting at the cap does not pay the full registry scan on every
  // subsequent submit.
  const size_t target = kMaxRetainedJobs - kMaxRetainedJobs / 4;
  for (uint64_t id : terminal_ids) {
    if (jobs_.size() <= target) break;
    jobs_.erase(id);
  }
}

void Engine::release_slot() {
  common::MutexLock lock(qmu_);
  --inflight_;
  slot_cv_.notify_one();
}

void Engine::run_job(detail::JobImpl& job) {
  // Queue-wait latency (ISSUE 8): submit -> the executor actually starting
  // the job (admission wait for a slot plus time parked in the queue).
  metrics_.queue_wait_hist.record_us(wall_us_since(job.submitted_at));
  Status st;
  switch (job.req.kind) {
    case JobKind::kPipeline: {
      auto w = workload(job.req.workload);
      if (!w.ok()) {
        st = w.status();
        break;
      }
      auto pr = pipeline_impl(**w, &job.token);
      if (pr.ok()) {
        // Value snapshot: the job owns its result independently of the
        // Engine's memo (readers may outlive the Engine).  Written before
        // finalize(), whose lock hand-off publishes it to readers.
        job.pipeline_result = **pr;
      } else {
        st = pr.status();
      }
      break;
    }
    case JobKind::kSimulate: {
      auto w = workload(job.req.workload);
      if (!w.ok()) {
        st = w.status();
        break;
      }
      auto sr = simulate_impl(**w, job.req.sim, &job.token);
      if (sr.ok()) {
        job.sim_result = std::move(sr).value();
      } else {
        st = sr.status();
      }
      break;
    }
    case JobKind::kFaultCampaign:
    case JobKind::kTransientCampaign:
      // Campaign jobs never enter the executor queue (see submit()).
      st = Status::Internal("campaign job on the executor queue");
      break;
  }
  const JobState terminal = terminal_state_for(st);
  // Ordering contract for observers woken by finalize(): the slot is
  // released first (PR 3's "inflight == 0 once every future resolved"
  // still holds) and the metrics are recorded first (a wait() that
  // returned sees this job in the terminal-state counters).
  release_slot();
  metrics_.record_terminal(terminal, st.ok(), wall_us_since(job.submitted_at));
  job.finalize(terminal, std::move(st));
}

void Engine::executor_loop() {
  for (;;) {
    std::shared_ptr<detail::JobImpl> job;
    uint64_t seq = 0;
    {
      common::MutexLock lock(qmu_);
      qcv_.wait(lock.native(), [&]() GPURF_NO_THREAD_SAFETY_ANALYSIS {
        return stopping_ || !queue_.empty();
      });
      if (queue_.empty()) return;  // stopping, queue drained
      // Highest priority first; FIFO (lowest id) within a level.  The
      // queue is short-lived and bounded by max_inflight, so a linear
      // scan beats heap bookkeeping.
      size_t best = 0;
      for (size_t i = 1; i < queue_.size(); ++i) {
        const auto& a = *queue_[i];
        const auto& b = *queue_[best];
        if (a.req.priority > b.req.priority ||
            (a.req.priority == b.req.priority && a.id < b.id))
          best = i;
      }
      job = std::move(queue_[best]);
      queue_.erase(queue_.begin() + best);
      seq = next_run_seq_++;
    }

    if (job->start_running(seq)) {
      run_job(*job);
    } else {
      // The job went terminal while queued (Job::cancel finalized it) or
      // its token demands a stop before any work started.  Release the
      // slot, make sure a terminal state is recorded, and count it (each
      // popped-unstarted job is counted exactly here, exactly once).
      release_slot();
      const common::StopReason r = job->token.stop_reason();
      JobState terminal = JobState::kCancelled;
      Status st = Status::Cancelled("cancelled while queued");
      if (r == common::StopReason::kDeadline) {
        terminal = JobState::kDeadlineExceeded;
        st = Status::DeadlineExceeded("deadline expired in queue");
      }
      metrics_.record_terminal(terminal, false,
                               wall_us_since(job->submitted_at));
      job->finalize(terminal, std::move(st));
    }
  }
}

bool Engine::start_campaign(detail::JobImpl& job) {
  uint64_t seq = 0;
  {
    common::MutexLock lock(qmu_);
    seq = next_run_seq_++;
  }
  if (job.start_running(seq)) {
    metrics_.queue_wait_hist.record_us(wall_us_since(job.submitted_at));
    return true;
  }
  // Cancelled (or deadline-expired) before the orchestrator started.
  const common::StopReason r = job.token.stop_reason();
  const bool dl = r == common::StopReason::kDeadline;
  const JobState terminal =
      dl ? JobState::kDeadlineExceeded : JobState::kCancelled;
  metrics_.record_terminal(terminal, false, wall_us_since(job.submitted_at));
  job.finalize(terminal,
               dl ? Status::DeadlineExceeded("deadline before campaign start")
                  : Status::Cancelled("cancelled before campaign start"));
  return false;
}

void Engine::run_campaign(std::shared_ptr<detail::JobImpl> job) {
  if (!start_campaign(*job)) return;

  const FaultCampaignRequest& creq = job->req.campaign;
  // Faults live in the compressed register file: a campaign over the
  // baseline RF is meaningless, so reject it before spawning children
  // instead of letting every child fail with the same error.
  if (creq.sim.mode == workloads::SimMode::kOriginal) {
    const Status bad = Status::InvalidArgument(
        "fault campaign '" + job->req.workload +
        "' requires a compressed mode (perfect|high)");
    const JobState terminal = terminal_state_for(bad);
    metrics_.record_terminal(terminal, false,
                             wall_us_since(job->submitted_at));
    job->finalize(terminal, bad);
    return;
  }
  const int maps_per = std::max(1, creq.maps_per_density);
  job->token.campaign_maps_total.store(
      static_cast<int>(creq.densities.size()) * maps_per,
      std::memory_order_relaxed);
  job->token.set_stage(common::JobStage::kSimulating);

  // Submit one child simulate job per (density, map).  Per-map seeds are
  // a deterministic splitmix64 stream off base_seed, so the same request
  // reruns the exact same maps.  Children inherit the parent's priority
  // and the remainder of its deadline.
  FaultCampaignResult result;
  result.workload = job->req.workload;
  std::vector<Job> children;
  Status st;
  try {
    uint64_t seed_state = creq.base_seed;
    for (double density : creq.densities) {
      for (int m = 0; m < maps_per; ++m) {
        job->token.checkpoint();  // stop submitting once cancelled
        FaultCampaignPoint pt;
        pt.density = density;
        pt.seed = splitmix64(seed_state);
        SimRequest sr = creq.sim;
        sr.fault.seed = pt.seed;
        sr.fault.density = density;
        // Early stopping needs every child scored, whatever the template
        // said.
        if (creq.quality_floor > 0.0) sr.fault.score_quality = true;
        JobRequest child =
            JobRequest::simulate(job->req.workload, sr)
                .with_priority(job->req.priority);
        if (job->token.has_deadline()) {
          const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
              job->token.deadline() - detail::JobImpl::Clock::now());
          child.deadline_ms = std::max<int64_t>(1, left.count());
        }
        result.points.push_back(pt);
        children.push_back(submit(std::move(child)));
      }
    }

    // Collect in submission order, polling the parent token so a
    // campaign cancel propagates to every child at the next slice.
    // Submission order is density-major, so early stopping can act at
    // each density boundary: once the mean quality delta of a completed
    // density crosses the floor, the remaining (higher-density) children
    // are cancelled cooperatively and the result is marked truncated.
    double delta_sum = 0.0;
    int delta_n = 0;
    for (size_t i = 0; i < children.size(); ++i) {
      while (!children[i].wait_for(std::chrono::milliseconds(50)))
        job->token.checkpoint();
      FaultCampaignPoint& pt = result.points[i];
      pt.state = children[i].state();
      auto child_res = children[i].sim_result();
      if (child_res.ok()) {
        pt.fault = child_res->fault;
        pt.cycles = child_res->stats.cycles;
        pt.ipc = child_res->stats.ipc();
      } else {
        pt.error = child_res.status().to_string();
      }
      job->token.campaign_maps_done.fetch_add(1, std::memory_order_relaxed);
      if (creq.quality_floor > 0.0 && !result.truncated) {
        if (child_res.ok() && pt.fault.quality_scored) {
          delta_sum += pt.fault.quality_delta;
          ++delta_n;
        }
        const bool density_done =
            i + 1 == result.points.size() ||
            result.points[i + 1].density != pt.density;
        if (density_done) {
          if (delta_n > 0 && delta_sum / delta_n > creq.quality_floor) {
            result.truncated = true;
            result.truncated_at_density = pt.density;
            for (size_t j = i + 1; j < children.size(); ++j)
              children[j].cancel();
          }
          delta_sum = 0.0;
          delta_n = 0;
        }
      }
    }
  } catch (const common::CancelledError& e) {
    st = stop_status(e, "fault campaign '" + job->req.workload + "'");
  } catch (const Error& e) {
    // submit() on a stopping Engine, or a child rejection.
    st = Status::Cancelled("fault campaign '" + job->req.workload +
                           "' aborted: " + e.what());
  } catch (const std::exception& e) {
    st = Status::Internal("fault campaign '" + job->req.workload + "': " +
                          e.what());
  }
  if (!st.ok()) {
    // Propagate the stop to every child before finalizing the parent, so
    // a cancelled campaign never leaves orphan work running.
    for (auto& c : children) c.cancel();
    for (auto& c : children) c.wait();
  } else if (result.points.empty()) {
    st = Status::InvalidArgument("fault campaign '" + job->req.workload +
                                 "' has no density points");
  } else {
    job->campaign_result = std::move(result);
  }
  const JobState terminal = terminal_state_for(st);
  metrics_.record_terminal(terminal, st.ok(),
                           wall_us_since(job->submitted_at));
  job->finalize(terminal, std::move(st));
}

void Engine::run_transient_campaign(std::shared_ptr<detail::JobImpl> job) {
  if (!start_campaign(*job)) return;

  const TransientCampaignRequest& creq = job->req.transient;
  const int per = std::max(1, creq.seeds_per_rate);
  job->token.campaign_maps_total.store(
      static_cast<int>(creq.flip_rates.size()) * per,
      std::memory_order_relaxed);
  job->token.set_stage(common::JobStage::kSimulating);

  // One child simulate job per (flip rate, seed).  Seeds are a
  // deterministic splitmix64 stream off base_seed, so a campaign reruns
  // the exact same flip traces; children inherit the parent's priority and
  // the remainder of its deadline.  Any mode is legal — comparing the
  // baseline RF's vulnerability against the compressed one is the point.
  TransientCampaignResult result;
  result.workload = job->req.workload;
  std::vector<Job> children;
  Status st;
  try {
    uint64_t seed_state = creq.base_seed;
    for (double rate : creq.flip_rates) {
      for (int s = 0; s < per; ++s) {
        job->token.checkpoint();  // stop submitting once cancelled
        TransientCampaignPoint pt;
        pt.flips_per_mcycle = rate;
        pt.seed = splitmix64(seed_state);
        SimRequest sr = creq.sim;
        sr.soft.flips_per_mcycle = rate;
        sr.soft.seed = pt.seed;
        JobRequest child = JobRequest::simulate(job->req.workload, sr)
                               .with_priority(job->req.priority);
        if (job->token.has_deadline()) {
          const auto left =
              std::chrono::duration_cast<std::chrono::milliseconds>(
                  job->token.deadline() - detail::JobImpl::Clock::now());
          child.deadline_ms = std::max<int64_t>(1, left.count());
        }
        result.points.push_back(pt);
        children.push_back(submit(std::move(child)));
      }
    }

    for (size_t i = 0; i < children.size(); ++i) {
      while (!children[i].wait_for(std::chrono::milliseconds(50)))
        job->token.checkpoint();
      TransientCampaignPoint& pt = result.points[i];
      pt.state = children[i].state();
      auto child_res = children[i].sim_result();
      if (child_res.ok()) {
        pt.soft = child_res->soft;
        pt.cycles = child_res->stats.cycles;
        pt.ipc = child_res->stats.ipc();
      } else {
        pt.error = child_res.status().to_string();
      }
      job->token.campaign_maps_done.fetch_add(1, std::memory_order_relaxed);
    }
  } catch (const common::CancelledError& e) {
    st = stop_status(e, "transient campaign '" + job->req.workload + "'");
  } catch (const Error& e) {
    // submit() on a stopping Engine, or a child rejection.
    st = Status::Cancelled("transient campaign '" + job->req.workload +
                           "' aborted: " + e.what());
  } catch (const std::exception& e) {
    st = Status::Internal("transient campaign '" + job->req.workload +
                          "': " + e.what());
  }
  if (!st.ok()) {
    for (auto& c : children) c.cancel();
    for (auto& c : children) c.wait();
  } else if (result.points.empty()) {
    st = Status::InvalidArgument("transient campaign '" + job->req.workload +
                                 "' has no flip-rate points");
  } else {
    job->transient_result = std::move(result);
  }
  const JobState terminal = terminal_state_for(st);
  metrics_.record_terminal(terminal, st.ok(),
                           wall_us_since(job->submitted_at));
  job->finalize(terminal, std::move(st));
}

Status Engine::drain(int64_t budget_ms) {
  const auto deadline =
      detail::JobImpl::Clock::now() +
      std::chrono::milliseconds(budget_ms > 0 ? budget_ms : 0);
  std::vector<std::shared_ptr<detail::JobImpl>> live;
  {
    common::MutexLock lock(qmu_);
    live.reserve(jobs_.size());
    for (const auto& [id, j] : jobs_) live.push_back(j);
  }
  // Shed still-queued jobs immediately: drain means "finish what is
  // running, start nothing new".  (The executor releases their slots when
  // it pops the finalized entries.)
  for (auto& j : live) {
    bool queued = false;
    {
      std::lock_guard<std::mutex> lk(j->mu);
      queued = j->state == JobState::kQueued;
    }
    if (queued) {
      j->token.cancel();
      j->finalize(JobState::kCancelled,
                  Status::Cancelled("cancelled by drain while queued"));
    }
  }
  // Running jobs get the budget...
  size_t cancelled = 0;
  for (auto& j : live) {
    std::unique_lock<std::mutex> lk(j->mu);
    if (!j->cv.wait_until(lk, deadline,
                          [&] { return job_state_terminal(j->state); })) {
      lk.unlock();
      j->token.cancel();
      ++cancelled;
    }
  }
  // ...then the stragglers are cancelled cooperatively and we wait for
  // their next checkpoint, so the caller can destroy the Engine without
  // racing in-flight results.
  for (auto& j : live) {
    std::unique_lock<std::mutex> lk(j->mu);
    j->cv.wait(lk, [&] { return job_state_terminal(j->state); });
  }
  return cancelled == 0
             ? Status::Ok()
             : Status::DeadlineExceeded(
                   std::to_string(cancelled) +
                   " running job(s) cancelled at the drain budget");
}

size_t Engine::inflight() const {
  common::MutexLock lock(qmu_);
  return inflight_;
}

MetricsSnapshot Engine::metrics_snapshot() const {
  MetricsSnapshot m;
  m.pipeline_memo_hits =
      pipeline_stats_.memo_hits.load(std::memory_order_relaxed);
  m.pipeline_memo_misses =
      pipeline_stats_.memo_misses.load(std::memory_order_relaxed);
  m.disk_cache_hits =
      pipeline_stats_.disk_cache_hits.load(std::memory_order_relaxed);
  m.disk_cache_stale_rejections =
      pipeline_stats_.disk_cache_stale_rejections.load(
          std::memory_order_relaxed);
  m.disk_cache_write_failures =
      pipeline_stats_.disk_cache_write_failures.load(
          std::memory_order_relaxed);
  m.disk_cache_disabled =
      pipeline_stats_.disk_cache_disabled.load(std::memory_order_relaxed) ? 1
                                                                          : 0;
  m.analysis_cache_hits = analysis_cache_.hits();
  m.analysis_cache_misses = analysis_cache_.misses();
  {
    common::MutexLock lock(qmu_);
    m.queue_depth = queue_.size();
    m.inflight = inflight_;
    m.jobs_running = inflight_ - queue_.size();
  }
  m.jobs_submitted = metrics_.jobs_submitted.load(std::memory_order_relaxed);
  m.jobs_done = metrics_.jobs_done.load(std::memory_order_relaxed);
  m.jobs_failed = metrics_.jobs_failed.load(std::memory_order_relaxed);
  m.jobs_cancelled = metrics_.jobs_cancelled.load(std::memory_order_relaxed);
  m.jobs_deadline_exceeded =
      metrics_.jobs_deadline_exceeded.load(std::memory_order_relaxed);
  m.job_wall_us_total =
      metrics_.job_wall_us_total.load(std::memory_order_relaxed);
  m.queue_wait = metrics_.queue_wait_hist.snapshot();
  m.tune = metrics_.tune_hist.snapshot();
  m.sim = metrics_.sim_hist.snapshot();
  return m;
}

std::string Engine::metrics_json() const {
  return api::to_json(metrics_snapshot());
}

// ------------------------------------------------- legacy futures (PR 3)

std::future<StatusOr<workloads::PipelineResult>> Engine::submit_pipeline(
    std::string name) {
  Job job = submit(JobRequest::pipeline(std::move(name)));
  auto impl = job.impl_;
  auto prom = std::make_shared<
      std::promise<StatusOr<workloads::PipelineResult>>>();
  auto fut = prom->get_future();
  impl->add_listener([impl, prom] {
    std::unique_lock<std::mutex> lk(impl->mu);
    StatusOr<workloads::PipelineResult> out =
        impl->pipeline_result
            ? StatusOr<workloads::PipelineResult>(*impl->pipeline_result)
            : StatusOr<workloads::PipelineResult>(
                  impl->status.ok()
                      ? Status::Internal("job finished without a result")
                      : impl->status);
    lk.unlock();
    prom->set_value(std::move(out));
  });
  return fut;
}

std::future<StatusOr<sim::SimResult>> Engine::submit_simulate(std::string name,
                                                              SimRequest req) {
  Job job = submit(JobRequest::simulate(std::move(name), req));
  auto impl = job.impl_;
  auto prom = std::make_shared<std::promise<StatusOr<sim::SimResult>>>();
  auto fut = prom->get_future();
  impl->add_listener([impl, prom] {
    std::unique_lock<std::mutex> lk(impl->mu);
    StatusOr<sim::SimResult> out =
        impl->sim_result
            ? StatusOr<sim::SimResult>(*impl->sim_result)
            : StatusOr<sim::SimResult>(
                  impl->status.ok()
                      ? Status::Internal("job finished without a result")
                      : impl->status);
    lk.unlock();
    prom->set_value(std::move(out));
  });
  return fut;
}

}  // namespace gpurf

namespace gpurf::workloads {

// Legacy shim: the free function that used to own the process-global memo
// now delegates to the process-default Engine.  Errors surface as
// gpurf::Error (thrown by StatusOr::value), matching the old contract.
const PipelineResult& run_pipeline(const Workload& w) {
  return *Engine::shared().pipeline(w).value();
}

}  // namespace gpurf::workloads
