#include "api/engine.hpp"

#include <algorithm>
#include <utility>

#include "api/json.hpp"
#include "ir/parser.hpp"
#include "ir/verifier.hpp"

namespace gpurf {

namespace {

EngineOptions resolve(EngineOptions o) {
  // Environment variables act as defaults only, consulted exactly once
  // here; after construction the Engine never touches the environment.
  if (o.threads <= 0) o.threads = common::default_thread_count();
  if (o.cache_dir.empty()) o.cache_dir = workloads::default_cache_dir();
  if (o.tuner.speculate_batch <= 0) o.tuner.speculate_batch = o.threads;
  if (o.async_workers <= 0) o.async_workers = o.threads;
  if (o.max_inflight == 0)
    o.max_inflight = 2 * static_cast<size_t>(o.async_workers);
  o.run.thread_insts = nullptr;
  return o;
}

workloads::PipelineOptions pipeline_options(const EngineOptions& o) {
  workloads::PipelineOptions p;
  p.use_disk_cache = o.use_disk_cache;
  p.cache_dir = o.cache_dir;
  p.tuner = o.tuner;
  p.run = o.run;
  return p;
}

}  // namespace

Engine::Engine(EngineOptions opts)
    : opts_(resolve(std::move(opts))),
      pool_(opts_.threads),
      pipelines_(pipeline_options(opts_)),
      registry_(workloads::make_all_workloads()) {}

Engine::~Engine() {
  {
    std::lock_guard<std::mutex> lock(qmu_);
    stopping_ = true;
    qcv_.notify_all();
    slot_cv_.notify_all();
  }
  for (auto& t : executors_) t.join();
}

Engine& Engine::shared() {
  static Engine engine;
  return engine;
}

std::vector<std::string> Engine::workload_names() const {
  std::vector<std::string> names;
  names.reserve(registry_.size());
  for (const auto& w : registry_) names.push_back(w->spec().name);
  return names;
}

StatusOr<const workloads::Workload*> Engine::workload(
    std::string_view name) const {
  for (const auto& w : registry_)
    if (w->spec().name == name) return static_cast<const workloads::Workload*>(w.get());
  return Status::NotFound("unknown workload '" + std::string(name) +
                          "'; known: " + [this] {
                            std::string s;
                            for (const auto& w : registry_) {
                              if (!s.empty()) s += ", ";
                              s += w->spec().name;
                            }
                            return s;
                          }());
}

StatusOr<const workloads::PipelineResult*> Engine::pipeline(
    const workloads::Workload& w) {
  Scope scope(*this);
  // gpurf::Error is the core's recoverable, input-dependent tier
  // (GPURF_CHECK) — e.g. a workload whose metric fails at full precision —
  // so it maps to FailedPrecondition; anything else escaping the core is
  // Internal.  GPURF_ASSERT (state corruption) still aborts by design.
  try {
    return &pipelines_.get(w);
  } catch (const Error& e) {
    return Status::FailedPrecondition(std::string("pipeline '") +
                                      w.spec().name + "': " + e.what());
  } catch (const std::exception& e) {
    return Status::Internal(std::string("pipeline '") + w.spec().name +
                            "': " + e.what());
  }
}

StatusOr<const workloads::PipelineResult*> Engine::pipeline(
    std::string_view name) {
  auto w = workload(name);
  if (!w.ok()) return w.status();
  return pipeline(**w);
}

StatusOr<workloads::PipelineResult> Engine::compute_pipeline(
    const workloads::Workload& w) {
  Scope scope(*this);
  workloads::PipelineOptions opt = pipelines_.options();
  opt.use_disk_cache = false;
  try {
    return workloads::compute_pipeline(w, opt);
  } catch (const Error& e) {
    return Status::FailedPrecondition(std::string("pipeline '") +
                                      w.spec().name + "': " + e.what());
  } catch (const std::exception& e) {
    return Status::Internal(std::string("pipeline '") + w.spec().name +
                            "': " + e.what());
  }
}

StatusOr<std::string> Engine::pipeline_json(std::string_view name) {
  auto pr = pipeline(name);
  if (!pr.ok()) return pr.status();
  return api::to_json(**pr);
}

StatusOr<sim::SimResult> Engine::simulate(const workloads::Workload& w,
                                          const SimRequest& req) {
  if (req.variant >= w.num_sample_variants() &&
      req.scale == workloads::Scale::kSample)
    return Status::InvalidArgument(
        "variant " + std::to_string(req.variant) + " out of range for '" +
        w.spec().name + "'");
  auto pr = pipeline(w);
  if (!pr.ok()) return pr.status();

  Scope scope(*this);
  try {
    auto inst = w.make_instance(req.scale, req.variant);
    auto spec = workloads::make_launch_spec(w, inst, **pr, req.mode);
    const sim::CompressionConfig comp =
        req.compression ? *req.compression
                        : workloads::make_compression_config(req.mode);
    return sim::simulate(opts_.gpu, comp, spec);
  } catch (const Error& e) {
    return Status::FailedPrecondition(std::string("simulate '") +
                                      w.spec().name + "': " + e.what());
  } catch (const std::exception& e) {
    return Status::Internal(std::string("simulate '") + w.spec().name +
                            "': " + e.what());
  }
}

StatusOr<sim::SimResult> Engine::simulate(std::string_view name,
                                          const SimRequest& req) {
  auto w = workload(name);
  if (!w.ok()) return w.status();
  return simulate(**w, req);
}

StatusOr<ir::Kernel> Engine::parse_kernel(std::string_view asm_text) const {
  try {
    return ir::parse_kernel(asm_text);
  } catch (const Error& e) {
    return Status::InvalidArgument(std::string("parse: ") + e.what());
  }
}

Status Engine::verify_kernel(const ir::Kernel& k) const {
  try {
    ir::verify(k);
    return Status::Ok();
  } catch (const Error& e) {
    return Status::FailedPrecondition(std::string("verify '") + k.name +
                                      "': " + e.what());
  }
}

StatusOr<tuning::TuneResult> Engine::tune(const ir::Kernel& k,
                                          tuning::QualityProbe& probe,
                                          quality::QualityLevel level) {
  Scope scope(*this);
  tuning::TunerOptions topt = opts_.tuner;
  topt.level = level;
  topt.defer_validation = false;
  try {
    return tuning::tune_precision(k, probe, topt);
  } catch (const Error& e) {
    return Status::FailedPrecondition(std::string("tune '") + k.name +
                                      "': " + e.what());
  }
}

// --------------------------------------------------------- async executor

void Engine::ensure_executor() {
  std::lock_guard<std::mutex> lock(qmu_);
  if (executor_started_) return;
  executor_started_ = true;
  executors_.reserve(static_cast<size_t>(opts_.async_workers));
  for (int t = 0; t < opts_.async_workers; ++t)
    executors_.emplace_back([this] { executor_loop(); });
}

void Engine::executor_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(qmu_);
      qcv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    // The job itself releases its in-flight slot (before fulfilling its
    // future, so inflight() is 0 once every future has been observed).
    job();
  }
}

void Engine::finish_job() {
  std::lock_guard<std::mutex> lock(qmu_);
  --inflight_;
  slot_cv_.notify_one();
}

void Engine::enqueue(std::function<void()> job) {
  ensure_executor();
  std::unique_lock<std::mutex> lock(qmu_);
  // Bounded in-flight queue: backpressure, not drop.  Counts queued +
  // running jobs so a slow consumer cannot pile up unbounded work.
  slot_cv_.wait(lock,
                [&] { return stopping_ || inflight_ < opts_.max_inflight; });
  GPURF_CHECK(!stopping_, "submit on a stopping Engine");
  ++inflight_;
  queue_.push_back(std::move(job));
  qcv_.notify_one();
}

size_t Engine::inflight() const {
  std::lock_guard<std::mutex> lock(qmu_);
  return inflight_;
}

std::future<StatusOr<workloads::PipelineResult>> Engine::submit_pipeline(
    std::string name) {
  auto prom = std::make_shared<
      std::promise<StatusOr<workloads::PipelineResult>>>();
  auto fut = prom->get_future();
  enqueue([this, prom, name = std::move(name)] {
    StatusOr<workloads::PipelineResult> result = [&] {
      auto pr = pipeline(name);  // binds Scope internally
      return pr.ok() ? StatusOr<workloads::PipelineResult>(**pr)  // snapshot
                     : StatusOr<workloads::PipelineResult>(pr.status());
    }();
    finish_job();
    prom->set_value(std::move(result));
  });
  return fut;
}

std::future<StatusOr<sim::SimResult>> Engine::submit_simulate(std::string name,
                                                              SimRequest req) {
  auto prom = std::make_shared<std::promise<StatusOr<sim::SimResult>>>();
  auto fut = prom->get_future();
  enqueue([this, prom, name = std::move(name), req] {
    auto result = simulate(name, req);
    finish_job();
    prom->set_value(std::move(result));
  });
  return fut;
}

}  // namespace gpurf

namespace gpurf::workloads {

// Legacy shim: the free function that used to own the process-global memo
// now delegates to the process-default Engine.  Errors surface as
// gpurf::Error (thrown by StatusOr::value), matching the old contract.
const PipelineResult& run_pipeline(const Workload& w) {
  return *Engine::shared().pipeline(w).value();
}

}  // namespace gpurf::workloads
