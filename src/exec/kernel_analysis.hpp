#pragma once
// Shared per-kernel execution analysis (ISSUE 1 tentpole, exec layer).
//
// BlockExec used to rebuild the CFG and recompute immediate post-dominators
// for every thread block it executed — once per grid block, per functional
// run, per tuner probe.  For a tuning session that is hundreds of thousands
// of identical recomputations of the same static facts.
//
// KernelAnalysis hoists everything the interpreter needs that depends only
// on the kernel text into one immutable, shareable object:
//   * the CFG and the ipdom vector (SIMT reconvergence points),
//   * a flattened decoded instruction stream: block-major, contiguous,
//     with per-instruction flags (has_dst, control class) predecoded so
//     the dispatch loop stops chasing the opcode-info table.
//
// Analyses memoize in an AnalysisCache: a thread-safe map keyed by kernel
// address and guarded by a structural fingerprint, so the rare address
// reuse after a kernel is destroyed can never alias a stale entry.
// Concurrent tuner probes share one immutable analysis.  Each gpurf::Engine
// owns a private cache (bound per-thread while the Engine executes work);
// code outside any Engine falls back to a process-wide default via
// analyze_kernel().

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/dataflow.hpp"
#include "ir/kernel.hpp"

namespace gpurf::exec {

/// Fused (opcode, type) lane operation, resolved at decode time so the SoA
/// warp dispatcher switches exactly once per warp instruction (ISSUE 2).
/// Every variant the scalar exec_lane reference distinguishes at runtime
/// gets its own enumerator; the two paths must stay bit-for-bit equal.
enum class LaneOp : uint8_t {
  kAddF, kAddI, kSubF, kSubI, kMulF, kMulI, kMadF, kMadI,
  kDivF, kDivS, kDivU, kRemS, kRemU,
  kMinF, kMinS, kMinU, kMaxF, kMaxS, kMaxU,
  kAbsF, kAbsI, kNegF, kNegI,
  kAnd, kOr, kXor, kNot, kShl, kShrS, kShrU,
  kSin, kCos, kEx2, kLg2, kSqrt, kRsqrt, kRcp,
  kMov, kSelp,
  kCvtF2S, kCvtF2U, kCvtS2F, kCvtU2F, kCvtBits,
  kSetpF, kSetpS, kSetpU,
  kLdGlobal, kLdShared, kTex2d,
  kStore,    ///< ST_GLOBAL / ST_SHARED (handled by the store path)
  kControl,  ///< BRA / RET / BAR (no lane data path)
};

/// One predecoded instruction: the IR instruction plus the hot flags the
/// dispatch loop consults every step.
struct DecodedInst {
  const gpurf::ir::Instruction* in = nullptr;
  LaneOp lane_op = LaneOp::kControl;
  uint8_t num_srcs = 0;     ///< copied from the instruction (gather count)
  bool has_dst = false;
  bool is_store = false;    ///< ST_GLOBAL / ST_SHARED
  bool is_control = false;  ///< BRA / RET / BAR (no lane data path)
  /// LD_GLOBAL / LD_SHARED / TEX2D: side effects (bounds checks, the
  /// memory trace) must still execute when the destination write is
  /// elided.
  bool is_mem_read = false;
  /// Destination is statically dead right after this write (PR 9): the
  /// interpreter may skip quantize/range-check/writeback — and for pure
  /// ALU ops the whole data path — without observable effect.
  bool dead_dst = false;
  /// Block-major flattened instruction index (position in the decoded
  /// stream).  Indexes launch-dependent side tables such as
  /// ExecContext::mem_proven (ISSUE 10).
  uint32_t flat = 0;
};

class KernelAnalysis {
 public:
  explicit KernelAnalysis(const gpurf::ir::Kernel& k);

  const analysis::Cfg& cfg() const { return cfg_; }
  const std::vector<uint32_t>& ipdom() const { return ipdom_; }

  /// Instruction-granular dataflow (PR 9): per-point live sets, dead-dst
  /// flags, linear live intervals — computed once and cached beside the
  /// CFG, shared by the interpreter, allocator and soft-error model.
  const analysis::Dataflow& dataflow() const { return dataflow_; }

  /// Decoded instruction at (block, index) — contiguous block-major layout.
  const DecodedInst& inst(uint32_t blk, uint32_t idx) const {
    return decoded_[block_first_[blk] + idx];
  }
  uint32_t block_size(uint32_t blk) const { return block_size_[blk]; }
  uint32_t num_blocks() const { return static_cast<uint32_t>(block_size_.size()); }

  /// Structural fingerprint of a kernel: cheap, order-sensitive hash over
  /// the instruction stream.  Used to invalidate cache entries whose
  /// kernel address was reused by a different kernel.
  static uint64_t fingerprint(const gpurf::ir::Kernel& k);

  uint64_t source_fingerprint() const { return fingerprint_; }

 private:
  analysis::Cfg cfg_;
  std::vector<uint32_t> ipdom_;
  analysis::Dataflow dataflow_;
  std::vector<DecodedInst> decoded_;
  std::vector<uint32_t> block_first_;
  std::vector<uint32_t> block_size_;
  uint64_t fingerprint_ = 0;
};

/// Bounded, thread-safe memo of KernelAnalysis objects.  Entries are
/// shared_ptrs, so a wholesale reset never invalidates analyses still in
/// use; rebuilds are cheap.  One instance per Engine (session isolation);
/// a process-wide default serves code running outside any Engine.
class AnalysisCache {
 public:
  /// Fetch (or build and memoize) the analysis for `k`.  The returned
  /// object is immutable and remains valid independently of the cache.
  std::shared_ptr<const KernelAnalysis> get(const gpurf::ir::Kernel& k);

  /// Number of live entries (diagnostics / tests).
  size_t size() const;

  /// Lifetime hit/miss counters (ISSUE 4 metrics): a hit served a memoized
  /// analysis, a miss built one.  Relaxed monotone counters, safe to read
  /// concurrently with get().
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  struct Entry {
    uint64_t fingerprint = 0;
    std::shared_ptr<const KernelAnalysis> analysis;
  };

  /// Bound: a process that churns through many transient kernels (fuzzers,
  /// interactive explorers) must not pin every dead kernel's analysis.
  static constexpr size_t kMaxEntries = 1024;

  mutable std::mutex mu_;
  std::unordered_map<const gpurf::ir::Kernel*, Entry> cache_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

namespace detail {
/// Cache bound to the calling thread by ScopedAnalysisCache; null means
/// "use the process-wide default".
inline thread_local AnalysisCache* tl_current_analysis_cache = nullptr;
}  // namespace detail

/// The process-wide default cache (used outside any Engine).
AnalysisCache& default_analysis_cache();

/// RAII: bind `cache` as the calling thread's analysis cache for the scope.
class ScopedAnalysisCache {
 public:
  explicit ScopedAnalysisCache(AnalysisCache* cache)
      : saved_(detail::tl_current_analysis_cache) {
    detail::tl_current_analysis_cache = cache;
  }
  ~ScopedAnalysisCache() { detail::tl_current_analysis_cache = saved_; }

  ScopedAnalysisCache(const ScopedAnalysisCache&) = delete;
  ScopedAnalysisCache& operator=(const ScopedAnalysisCache&) = delete;

 private:
  AnalysisCache* saved_;
};

/// Fetch (or build and memoize) the analysis for `k` from the calling
/// thread's current cache — the Engine-bound cache when inside an Engine
/// call, else the process-wide default.  Thread-safe; the caller should
/// hold the shared_ptr for the duration of use.
std::shared_ptr<const KernelAnalysis> analyze_kernel(const gpurf::ir::Kernel& k);

}  // namespace gpurf::exec
