#pragma once
// Functional SIMT interpreter.
//
// Threads execute in warps of 32 in lockstep; control-flow divergence is
// handled with a reconvergence stack whose reconvergence points are the
// immediate post-dominators of the branching blocks — the same mechanism
// GPGPU-Sim models for the paper's baseline (§3.1).
//
// The interpreter serves two masters:
//  * standalone functional runs (reference outputs and the precision
//    tuner's quality probes), via run_functional();
//  * the cycle-level timing simulator, which drives warps one instruction
//    at a time through BlockExec::step() and reads back the memory trace
//    of each instruction for its cache / coalescing model.
//
// Execution model (ISSUE 2): the data path is warp-vectorized — operands
// are gathered into 32-wide struct-of-arrays rows, each predecoded LaneOp
// runs as one branch-free lane loop the compiler auto-vectorises, and the
// destination row is written back under the active mask.  The per-lane
// scalar path (exec_lane) is retained as the bit-identical reference for
// asserts and differential fuzzing (ExecContext::use_soa = false).
// run_functional() additionally shards independent grid blocks across the
// shared thread pool with per-shard write-combine buffers merged in grid
// order, so parallel runs stay bit-identical to the serial schedule.

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "exec/kernel_analysis.hpp"
#include "exec/machine.hpp"
#include "ir/kernel.hpp"

namespace gpurf::exec {

constexpr uint32_t kWarpSize = 32;

/// One reconvergence-stack entry: execute from (blk, inst) with `mask`
/// until reaching block `rpc_blk` (kNoBlock = kernel exit).
struct StackEntry {
  uint32_t blk = 0;
  uint32_t inst = 0;
  uint32_t rpc_blk = gpurf::ir::kNoBlock;
  uint32_t mask = 0;
};

/// Result of executing one warp instruction; consumed by the timing model.
struct StepResult {
  const gpurf::ir::Instruction* inst = nullptr;
  uint32_t active_mask = 0;  ///< lanes that actually executed
  bool warp_done = false;
  bool at_barrier = false;
  /// Memory trace: per-lane word address (global/shared) or texel index
  /// (texture); valid for lanes set in active_mask of memory instructions.
  std::array<uint32_t, kWarpSize> addr{};
};

class WarpState {
 public:
  WarpState(uint32_t num_regs, uint32_t warp_in_block, uint32_t valid_mask)
      : regs_(size_t(num_regs) * kWarpSize, 0),
        warp_in_block_(warp_in_block),
        valid_mask_(valid_mask) {
    stack_.push_back(
        StackEntry{0, 0, gpurf::ir::kNoBlock, valid_mask});
  }

  uint32_t reg(uint32_t r, uint32_t lane) const {
    return regs_[size_t(r) * kWarpSize + lane];
  }
  void set_reg(uint32_t r, uint32_t lane, uint32_t v) {
    regs_[size_t(r) * kWarpSize + lane] = v;
  }

  /// Contiguous 32-lane row of register `r` — the storage is already
  /// struct-of-arrays (register-major, lanes adjacent), so the SoA warp
  /// kernels gather and scatter whole rows with vector loads/stores.
  const uint32_t* lanes(uint32_t r) const {
    return regs_.data() + size_t(r) * kWarpSize;
  }

  bool done() const { return done_; }
  uint32_t warp_in_block() const { return warp_in_block_; }
  uint32_t valid_mask() const { return valid_mask_; }
  const std::vector<StackEntry>& stack() const { return stack_; }

 private:
  friend class BlockExec;
  std::vector<uint32_t> regs_;
  std::vector<StackEntry> stack_;
  uint32_t warp_in_block_;
  uint32_t valid_mask_;
  bool done_ = false;
};

/// Execution state of one thread block: its warps plus shared memory.
class BlockExec {
 public:
  BlockExec(ExecContext& ctx, uint32_t ctaid_x, uint32_t ctaid_y);

  uint32_t num_warps() const { return static_cast<uint32_t>(warps_.size()); }
  const WarpState& warp(uint32_t w) const { return warps_[w]; }
  /// Mutable warp state — the soft-error injector's write path (PR 7):
  /// the timing simulator flips bits of resident registers between cycles.
  WarpState& warp_mut(uint32_t w) { return warps_[w]; }
  bool warp_done(uint32_t w) const { return warps_[w].done(); }
  bool all_done() const;

  /// The instruction the warp will execute next (nullptr when done).
  const gpurf::ir::Instruction* peek(uint32_t w) const;

  /// Predecoded view of the next instruction (nullptr when done) — lets the
  /// timing simulator reuse the decoded-stream flags instead of re-deriving
  /// opcode classes per issue attempt.
  const DecodedInst* peek_decoded(uint32_t w) const;

  /// Execute exactly one warp instruction.
  StepResult step(uint32_t w);

  /// Run the whole block functionally, respecting barriers by rotating
  /// between warps at barrier boundaries.
  void run_to_completion();

 private:
  uint32_t read_operand(const WarpState& ws, const gpurf::ir::Operand& o,
                        uint32_t lane) const;
  void write_dst(WarpState& ws, const gpurf::ir::Instruction& in,
                 uint32_t lane, uint32_t raw);
  uint32_t special_value(gpurf::ir::Special s, uint32_t warp_in_block,
                         uint32_t lane) const;
  uint32_t exec_lane(const WarpState& ws, const gpurf::ir::Instruction& in,
                     uint32_t lane, StepResult& res) const;
  // SoA warp data path (default): operands gathered into 32-wide rows, one
  // branch-free lane loop per fused LaneOp, masked row write-back.
  void gather_operand(const WarpState& ws, const gpurf::ir::Operand& o,
                      uint32_t* out) const;
  void exec_warp(WarpState& ws, const DecodedInst& dec, uint32_t exec_mask,
                 StepResult& res);
  void write_dst_warp(WarpState& ws, const gpurf::ir::Instruction& in,
                      uint32_t exec_mask, const uint32_t* vals);
  void advance(WarpState& ws, const gpurf::ir::Instruction& in,
               uint32_t exec_mask, StepResult& res);
  void pop_reconverged(WarpState& ws);

  ExecContext& ctx_;
  const gpurf::ir::Kernel& k_;
  /// Shared immutable analysis (CFG, ipdoms, decoded instruction stream);
  /// from ctx.analysis when provided, else the process-wide cache.
  std::shared_ptr<const KernelAnalysis> ka_;
  uint32_t ctaid_x_, ctaid_y_;
  std::vector<WarpState> warps_;
  std::vector<uint32_t> shared_;
  /// Set by step() for the instruction in flight: the static memory pass
  /// proved every dynamic address of this site in bounds and elision is on
  /// (ISSUE 10) — the load paths skip their GPURF_CHECKs.
  bool step_mem_proven_ = false;
};

/// Run the entire grid functionally (block by block).  Returns the total
/// number of thread instructions executed.
uint64_t run_functional(ExecContext& ctx);

}  // namespace gpurf::exec
