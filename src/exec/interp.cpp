#include "exec/interp.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "analysis/memory_access.hpp"
#include "common/bitutil.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace gpurf::exec {

namespace ir = gpurf::ir;
using ir::Instruction;
using ir::Opcode;
using ir::Type;

namespace {

int32_t as_s(uint32_t v) { return static_cast<int32_t>(v); }
float as_f(uint32_t v) { return bits_float(v); }
uint32_t from_s(int32_t v) { return static_cast<uint32_t>(v); }
uint32_t from_f(float v) { return float_bits(v); }

/// Wrapping 32-bit multiply (hardware semantics, no UB).
uint32_t mul32(uint32_t a, uint32_t b) {
  return static_cast<uint32_t>(
      static_cast<uint64_t>(a) * static_cast<uint64_t>(b));
}

int32_t sdiv(int32_t a, int32_t b) {
  if (b == 0) return 0;                      // deterministic, like saturating HW
  if (a == INT32_MIN && b == -1) return INT32_MIN;
  return a / b;
}
int32_t srem(int32_t a, int32_t b) {
  if (b == 0) return 0;
  if (a == INT32_MIN && b == -1) return 0;
  return a % b;
}

int32_t f2s(float v) {
  if (std::isnan(v)) return 0;
  if (v >= 2147483647.0f) return INT32_MAX;
  if (v <= -2147483648.0f) return INT32_MIN;
  return static_cast<int32_t>(v);  // trunc toward zero
}
uint32_t f2u(float v) {
  if (std::isnan(v) || v <= 0.0f) return 0;
  if (v >= 4294967295.0f) return UINT32_MAX;
  return static_cast<uint32_t>(v);
}

}  // namespace

BlockExec::BlockExec(ExecContext& ctx, uint32_t ctaid_x, uint32_t ctaid_y)
    : ctx_(ctx),
      k_(*ctx.kernel),
      ka_(ctx.analysis ? ctx.analysis : analyze_kernel(k_)),
      ctaid_x_(ctaid_x),
      ctaid_y_(ctaid_y) {
  const uint32_t tpb = ctx.launch.threads_per_block();
  const uint32_t nwarps = ctx.launch.warps_per_block();
  warps_.reserve(nwarps);
  for (uint32_t w = 0; w < nwarps; ++w) {
    const uint32_t first = w * kWarpSize;
    uint32_t valid = 0;
    for (uint32_t l = 0; l < kWarpSize; ++l)
      if (first + l < tpb) valid |= (1u << l);
    warps_.emplace_back(k_.num_regs(), w, valid);
  }
  // Sized via the shared helper so the interpreter and the static memory
  // pass agree exactly on what "in bounds" means for shared accesses.
  shared_.assign(analysis::shared_words(k_), 0);
}

bool BlockExec::all_done() const {
  for (const auto& w : warps_)
    if (!w.done()) return false;
  return true;
}

const Instruction* BlockExec::peek(uint32_t w) const {
  const DecodedInst* dec = peek_decoded(w);
  return dec ? dec->in : nullptr;
}

const DecodedInst* BlockExec::peek_decoded(uint32_t w) const {
  const WarpState& ws = warps_[w];
  if (ws.done()) return nullptr;
  const StackEntry& tos = ws.stack_.back();
  return &ka_->inst(tos.blk, tos.inst);
}

uint32_t BlockExec::special_value(ir::Special s, uint32_t warp_in_block,
                                  uint32_t lane) const {
  const uint32_t linear = warp_in_block * kWarpSize + lane;
  const auto& lc = ctx_.launch;
  switch (s) {
    case ir::Special::TID_X: return linear % lc.block_x;
    case ir::Special::TID_Y: return linear / lc.block_x;
    case ir::Special::CTAID_X: return ctaid_x_;
    case ir::Special::CTAID_Y: return ctaid_y_;
    case ir::Special::NTID_X: return lc.block_x;
    case ir::Special::NTID_Y: return lc.block_y;
    case ir::Special::NCTAID_X: return lc.grid_x;
    case ir::Special::NCTAID_Y: return lc.grid_y;
  }
  return 0;
}

uint32_t BlockExec::read_operand(const WarpState& ws, const ir::Operand& o,
                                 uint32_t lane) const {
  switch (o.kind) {
    case ir::Operand::Kind::REG:
      return ws.reg(o.index, lane);
    case ir::Operand::Kind::IMM_I:
      return static_cast<uint32_t>(static_cast<int64_t>(o.imm_i));
    case ir::Operand::Kind::IMM_F:
      return from_f(o.imm_f);
    case ir::Operand::Kind::SPECIAL:
      return special_value(static_cast<ir::Special>(o.index),
                           ws.warp_in_block(), lane);
    case ir::Operand::Kind::PARAM:
      return ctx_.params.at(o.index);
  }
  return 0;
}

void BlockExec::write_dst(WarpState& ws, const Instruction& in, uint32_t lane,
                          uint32_t raw) {
  const uint32_t d = in.dst;
  const Type t = k_.regs[d].type;

  // Model the sliced register file: a value stored through a narrow float
  // format is quantized on every write (§3.2.6, Value Truncator).
  if (t == Type::F32 && ctx_.precision && ctx_.precision->active()) {
    const auto& fmt = ctx_.precision->format(d);
    if (!fmt.is_fp32())
      raw = from_f(gpurf::fp::quantize(as_f(raw), fmt));
  }

  // Soundness check: integer values must stay inside the statically
  // computed range (a violation is a range-analysis bug, not a data bug).
  if (ctx_.range_check && ir::is_int(t)) {
    const auto& info = ctx_.range_check->regs[d];
    if (info.analyzed) {
      const int64_t v = (t == Type::S32)
                            ? static_cast<int64_t>(as_s(raw))
                            : static_cast<int64_t>(raw);
      GPURF_ASSERT(info.range.contains(v),
                   "range violation: %" << k_.regs[d].name << " = " << v
                                        << " outside " << info.range.str());
    }
  }
  ws.set_reg(d, lane, raw);
}

uint32_t BlockExec::exec_lane(const WarpState& ws, const Instruction& in,
                              uint32_t lane, StepResult& res) const {
  auto S = [&](int i) { return read_operand(ws, in.srcs[i], lane); };
  const Type t = in.type;

  switch (in.op) {
    case Opcode::ADD:
      return t == Type::F32 ? from_f(as_f(S(0)) + as_f(S(1)))
                            : S(0) + S(1);
    case Opcode::SUB:
      return t == Type::F32 ? from_f(as_f(S(0)) - as_f(S(1)))
                            : S(0) - S(1);
    case Opcode::MUL:
      return t == Type::F32 ? from_f(as_f(S(0)) * as_f(S(1)))
                            : mul32(S(0), S(1));
    case Opcode::MAD:
      return t == Type::F32
                 ? from_f(as_f(S(0)) * as_f(S(1)) + as_f(S(2)))
                 : mul32(S(0), S(1)) + S(2);
    case Opcode::DIV:
      if (t == Type::F32) return from_f(as_f(S(0)) / as_f(S(1)));
      if (t == Type::U32) return S(1) == 0 ? 0u : S(0) / S(1);
      return from_s(sdiv(as_s(S(0)), as_s(S(1))));
    case Opcode::REM:
      if (t == Type::U32) return S(1) == 0 ? 0u : S(0) % S(1);
      return from_s(srem(as_s(S(0)), as_s(S(1))));
    case Opcode::MIN:
      if (t == Type::F32) return from_f(std::fmin(as_f(S(0)), as_f(S(1))));
      if (t == Type::U32) return std::min(S(0), S(1));
      return from_s(std::min(as_s(S(0)), as_s(S(1))));
    case Opcode::MAX:
      if (t == Type::F32) return from_f(std::fmax(as_f(S(0)), as_f(S(1))));
      if (t == Type::U32) return std::max(S(0), S(1));
      return from_s(std::max(as_s(S(0)), as_s(S(1))));
    case Opcode::ABS:
      if (t == Type::F32) return from_f(std::fabs(as_f(S(0))));
      return from_s(as_s(S(0)) < 0 ? -as_s(S(0)) : as_s(S(0)));
    case Opcode::NEG:
      if (t == Type::F32) return from_f(-as_f(S(0)));
      return from_s(-as_s(S(0)));
    case Opcode::AND: return S(0) & S(1);
    case Opcode::OR: return S(0) | S(1);
    case Opcode::XOR: return S(0) ^ S(1);
    case Opcode::NOT: return ~S(0);
    case Opcode::SHL: return S(0) << (S(1) & 31);
    case Opcode::SHR:
      if (t == Type::S32) return from_s(as_s(S(0)) >> (S(1) & 31));
      return S(0) >> (S(1) & 31);
    case Opcode::SIN: return from_f(std::sin(as_f(S(0))));
    case Opcode::COS: return from_f(std::cos(as_f(S(0))));
    case Opcode::EX2: return from_f(std::exp2(as_f(S(0))));
    case Opcode::LG2: return from_f(std::log2(as_f(S(0))));
    case Opcode::SQRT: return from_f(std::sqrt(as_f(S(0))));
    case Opcode::RSQRT: return from_f(1.0f / std::sqrt(as_f(S(0))));
    case Opcode::RCP: return from_f(1.0f / as_f(S(0)));
    case Opcode::MOV: return S(0);
    case Opcode::SELP: return S(2) != 0 ? S(0) : S(1);
    case Opcode::CVT: {
      const uint32_t v = S(0);
      if (in.cvt_src_type == Type::F32) {
        return in.type == Type::S32 ? from_s(f2s(as_f(v))) : f2u(as_f(v));
      }
      if (in.type == Type::F32) {
        return in.cvt_src_type == Type::S32
                   ? from_f(static_cast<float>(as_s(v)))
                   : from_f(static_cast<float>(v));
      }
      return v;  // s32 <-> u32: raw copy
    }
    case Opcode::SETP: {
      const uint32_t a = S(0), b = S(1);
      bool r = false;
      auto cmp3 = [&](auto x, auto y) {
        switch (in.cmp) {
          case ir::CmpOp::EQ: return x == y;
          case ir::CmpOp::NE: return x != y;
          case ir::CmpOp::LT: return x < y;
          case ir::CmpOp::LE: return x <= y;
          case ir::CmpOp::GT: return x > y;
          case ir::CmpOp::GE: return x >= y;
        }
        return false;
      };
      if (t == Type::F32) r = cmp3(as_f(a), as_f(b));
      else if (t == Type::U32) r = cmp3(a, b);
      else r = cmp3(as_s(a), as_s(b));
      return r ? 1u : 0u;
    }
    case Opcode::LD_GLOBAL: {
      const int64_t addr = static_cast<int64_t>(S(0)) + in.mem_offset;
      res.addr[lane] = static_cast<uint32_t>(addr);
      if (step_mem_proven_) return ctx_.gmem->read_unchecked(res.addr[lane]);
      GPURF_CHECK(addr >= 0, "negative global address");
      return ctx_.gmem->read(static_cast<uint32_t>(addr));
    }
    case Opcode::LD_SHARED: {
      const int64_t addr = static_cast<int64_t>(S(0)) + in.mem_offset;
      res.addr[lane] = static_cast<uint32_t>(addr);
      if (step_mem_proven_) return shared_[res.addr[lane]];
      GPURF_CHECK(addr >= 0 &&
                      addr < static_cast<int64_t>(shared_.size()),
                  "shared load out of bounds @" << addr);
      return shared_[static_cast<size_t>(addr)];
    }
    case Opcode::TEX2D: {
      const auto& tex = ctx_.textures->at(in.tex);
      const int u = as_s(S(0)), v = as_s(S(1));
      res.addr[lane] = tex.texel_index(u, v);
      return from_f(tex.fetch(u, v));
    }
    default:
      GPURF_ASSERT(false, "exec_lane: unexpected opcode");
      return 0;
  }
}

void BlockExec::gather_operand(const WarpState& ws, const ir::Operand& o,
                               uint32_t* out) const {
  switch (o.kind) {
    case ir::Operand::Kind::REG: {
      const uint32_t* src = ws.lanes(o.index);
      for (uint32_t l = 0; l < kWarpSize; ++l) out[l] = src[l];
      return;
    }
    case ir::Operand::Kind::IMM_I: {
      const uint32_t v = static_cast<uint32_t>(static_cast<int64_t>(o.imm_i));
      for (uint32_t l = 0; l < kWarpSize; ++l) out[l] = v;
      return;
    }
    case ir::Operand::Kind::IMM_F: {
      const uint32_t v = from_f(o.imm_f);
      for (uint32_t l = 0; l < kWarpSize; ++l) out[l] = v;
      return;
    }
    case ir::Operand::Kind::SPECIAL: {
      const auto s = static_cast<ir::Special>(o.index);
      // Only the thread-index specials vary across a warp; everything else
      // is a launch constant and splats.
      if (s == ir::Special::TID_X || s == ir::Special::TID_Y) {
        for (uint32_t l = 0; l < kWarpSize; ++l)
          out[l] = special_value(s, ws.warp_in_block(), l);
        return;
      }
      const uint32_t v = special_value(s, ws.warp_in_block(), 0);
      for (uint32_t l = 0; l < kWarpSize; ++l) out[l] = v;
      return;
    }
    case ir::Operand::Kind::PARAM: {
      const uint32_t v = ctx_.params.at(o.index);
      for (uint32_t l = 0; l < kWarpSize; ++l) out[l] = v;
      return;
    }
  }
}

namespace {

/// Apply `fn(a, b)` across all 32 lanes — the workhorse the compiler
/// auto-vectorises (operations are total on every bit pattern, so inactive
/// lanes compute garbage that the masked write-back then discards).
template <typename Fn>
inline void warp_map2(const uint32_t* a, const uint32_t* b, uint32_t* out,
                      Fn&& fn) {
  for (uint32_t l = 0; l < 32; ++l) out[l] = fn(a[l], b[l]);
}

template <typename Fn>
inline void warp_map1(const uint32_t* a, uint32_t* out, Fn&& fn) {
  for (uint32_t l = 0; l < 32; ++l) out[l] = fn(a[l]);
}

/// Transcendentals dispatch to libm per lane; restrict them to active lanes
/// so a nearly-empty mask never pays 32 scalar calls.
template <typename Fn>
inline void warp_map1_masked(uint32_t mask, const uint32_t* a, uint32_t* out,
                             Fn&& fn) {
  for (uint32_t l = 0; l < 32; ++l)
    if ((mask >> l) & 1u) out[l] = fn(a[l]);
}

/// SETP comparison over a warp; the comparator is resolved once outside the
/// lane loop so each case is a branch-free compare-to-0/1 sweep.
template <typename Cast>
inline void warp_setp(ir::CmpOp cmp, const uint32_t* a, const uint32_t* b,
                      uint32_t* out, Cast cast) {
  switch (cmp) {
    case ir::CmpOp::EQ:
      warp_map2(a, b, out, [&](uint32_t x, uint32_t y) {
        return cast(x) == cast(y) ? 1u : 0u;
      });
      break;
    case ir::CmpOp::NE:
      warp_map2(a, b, out, [&](uint32_t x, uint32_t y) {
        return cast(x) != cast(y) ? 1u : 0u;
      });
      break;
    case ir::CmpOp::LT:
      warp_map2(a, b, out, [&](uint32_t x, uint32_t y) {
        return cast(x) < cast(y) ? 1u : 0u;
      });
      break;
    case ir::CmpOp::LE:
      warp_map2(a, b, out, [&](uint32_t x, uint32_t y) {
        return cast(x) <= cast(y) ? 1u : 0u;
      });
      break;
    case ir::CmpOp::GT:
      warp_map2(a, b, out, [&](uint32_t x, uint32_t y) {
        return cast(x) > cast(y) ? 1u : 0u;
      });
      break;
    case ir::CmpOp::GE:
      warp_map2(a, b, out, [&](uint32_t x, uint32_t y) {
        return cast(x) >= cast(y) ? 1u : 0u;
      });
      break;
  }
}

}  // namespace

void BlockExec::exec_warp(WarpState& ws, const DecodedInst& dec,
                          uint32_t exec_mask, StepResult& res) {
  const Instruction& in = *dec.in;
  alignas(64) uint32_t a[kWarpSize];
  alignas(64) uint32_t b[kWarpSize];
  alignas(64) uint32_t c[kWarpSize];
  // Zero-initialised: masked cases (loads, transcendentals) leave inactive
  // lanes untouched, and the branch-free write-back select still reads them.
  alignas(64) uint32_t out[kWarpSize] = {};

  if (dec.num_srcs > 0) gather_operand(ws, in.srcs[0], a);
  if (dec.num_srcs > 1) gather_operand(ws, in.srcs[1], b);
  if (dec.num_srcs > 2) gather_operand(ws, in.srcs[2], c);

  switch (dec.lane_op) {
    case LaneOp::kAddF:
      warp_map2(a, b, out, [](uint32_t x, uint32_t y) {
        return from_f(as_f(x) + as_f(y));
      });
      break;
    case LaneOp::kAddI:
      warp_map2(a, b, out, [](uint32_t x, uint32_t y) { return x + y; });
      break;
    case LaneOp::kSubF:
      warp_map2(a, b, out, [](uint32_t x, uint32_t y) {
        return from_f(as_f(x) - as_f(y));
      });
      break;
    case LaneOp::kSubI:
      warp_map2(a, b, out, [](uint32_t x, uint32_t y) { return x - y; });
      break;
    case LaneOp::kMulF:
      warp_map2(a, b, out, [](uint32_t x, uint32_t y) {
        return from_f(as_f(x) * as_f(y));
      });
      break;
    case LaneOp::kMulI:
      warp_map2(a, b, out,
                [](uint32_t x, uint32_t y) { return mul32(x, y); });
      break;
    case LaneOp::kMadF:
      for (uint32_t l = 0; l < kWarpSize; ++l)
        out[l] = from_f(as_f(a[l]) * as_f(b[l]) + as_f(c[l]));
      break;
    case LaneOp::kMadI:
      for (uint32_t l = 0; l < kWarpSize; ++l)
        out[l] = mul32(a[l], b[l]) + c[l];
      break;
    case LaneOp::kDivF:
      warp_map2(a, b, out, [](uint32_t x, uint32_t y) {
        return from_f(as_f(x) / as_f(y));
      });
      break;
    case LaneOp::kDivS:
      warp_map2(a, b, out, [](uint32_t x, uint32_t y) {
        return from_s(sdiv(as_s(x), as_s(y)));
      });
      break;
    case LaneOp::kDivU:
      warp_map2(a, b, out,
                [](uint32_t x, uint32_t y) { return y == 0 ? 0u : x / y; });
      break;
    case LaneOp::kRemS:
      warp_map2(a, b, out, [](uint32_t x, uint32_t y) {
        return from_s(srem(as_s(x), as_s(y)));
      });
      break;
    case LaneOp::kRemU:
      warp_map2(a, b, out,
                [](uint32_t x, uint32_t y) { return y == 0 ? 0u : x % y; });
      break;
    case LaneOp::kMinF:
      warp_map2(a, b, out, [](uint32_t x, uint32_t y) {
        return from_f(std::fmin(as_f(x), as_f(y)));
      });
      break;
    case LaneOp::kMinS:
      warp_map2(a, b, out, [](uint32_t x, uint32_t y) {
        return from_s(std::min(as_s(x), as_s(y)));
      });
      break;
    case LaneOp::kMinU:
      warp_map2(a, b, out,
                [](uint32_t x, uint32_t y) { return std::min(x, y); });
      break;
    case LaneOp::kMaxF:
      warp_map2(a, b, out, [](uint32_t x, uint32_t y) {
        return from_f(std::fmax(as_f(x), as_f(y)));
      });
      break;
    case LaneOp::kMaxS:
      warp_map2(a, b, out, [](uint32_t x, uint32_t y) {
        return from_s(std::max(as_s(x), as_s(y)));
      });
      break;
    case LaneOp::kMaxU:
      warp_map2(a, b, out,
                [](uint32_t x, uint32_t y) { return std::max(x, y); });
      break;
    case LaneOp::kAbsF:
      warp_map1(a, out,
                [](uint32_t x) { return from_f(std::fabs(as_f(x))); });
      break;
    case LaneOp::kAbsI:
      warp_map1(a, out, [](uint32_t x) {
        return from_s(as_s(x) < 0 ? -as_s(x) : as_s(x));
      });
      break;
    case LaneOp::kNegF:
      warp_map1(a, out, [](uint32_t x) { return from_f(-as_f(x)); });
      break;
    case LaneOp::kNegI:
      warp_map1(a, out, [](uint32_t x) { return from_s(-as_s(x)); });
      break;
    case LaneOp::kAnd:
      warp_map2(a, b, out, [](uint32_t x, uint32_t y) { return x & y; });
      break;
    case LaneOp::kOr:
      warp_map2(a, b, out, [](uint32_t x, uint32_t y) { return x | y; });
      break;
    case LaneOp::kXor:
      warp_map2(a, b, out, [](uint32_t x, uint32_t y) { return x ^ y; });
      break;
    case LaneOp::kNot:
      warp_map1(a, out, [](uint32_t x) { return ~x; });
      break;
    case LaneOp::kShl:
      warp_map2(a, b, out,
                [](uint32_t x, uint32_t y) { return x << (y & 31); });
      break;
    case LaneOp::kShrS:
      warp_map2(a, b, out, [](uint32_t x, uint32_t y) {
        return from_s(as_s(x) >> (y & 31));
      });
      break;
    case LaneOp::kShrU:
      warp_map2(a, b, out,
                [](uint32_t x, uint32_t y) { return x >> (y & 31); });
      break;
    case LaneOp::kSin:
      warp_map1_masked(exec_mask, a, out,
                       [](uint32_t x) { return from_f(std::sin(as_f(x))); });
      break;
    case LaneOp::kCos:
      warp_map1_masked(exec_mask, a, out,
                       [](uint32_t x) { return from_f(std::cos(as_f(x))); });
      break;
    case LaneOp::kEx2:
      warp_map1_masked(exec_mask, a, out, [](uint32_t x) {
        return from_f(std::exp2(as_f(x)));
      });
      break;
    case LaneOp::kLg2:
      warp_map1_masked(exec_mask, a, out, [](uint32_t x) {
        return from_f(std::log2(as_f(x)));
      });
      break;
    case LaneOp::kSqrt:
      warp_map1(a, out,
                [](uint32_t x) { return from_f(std::sqrt(as_f(x))); });
      break;
    case LaneOp::kRsqrt:
      warp_map1(a, out, [](uint32_t x) {
        return from_f(1.0f / std::sqrt(as_f(x)));
      });
      break;
    case LaneOp::kRcp:
      warp_map1(a, out, [](uint32_t x) { return from_f(1.0f / as_f(x)); });
      break;
    case LaneOp::kMov:
      warp_map1(a, out, [](uint32_t x) { return x; });
      break;
    case LaneOp::kSelp:
      for (uint32_t l = 0; l < kWarpSize; ++l)
        out[l] = c[l] != 0 ? a[l] : b[l];
      break;
    case LaneOp::kCvtF2S:
      warp_map1_masked(exec_mask, a, out,
                       [](uint32_t x) { return from_s(f2s(as_f(x))); });
      break;
    case LaneOp::kCvtF2U:
      warp_map1_masked(exec_mask, a, out,
                       [](uint32_t x) { return f2u(as_f(x)); });
      break;
    case LaneOp::kCvtS2F:
      warp_map1(a, out, [](uint32_t x) {
        return from_f(static_cast<float>(as_s(x)));
      });
      break;
    case LaneOp::kCvtU2F:
      warp_map1(a, out,
                [](uint32_t x) { return from_f(static_cast<float>(x)); });
      break;
    case LaneOp::kCvtBits:
      warp_map1(a, out, [](uint32_t x) { return x; });
      break;
    case LaneOp::kSetpF:
      warp_setp(in.cmp, a, b, out, [](uint32_t x) { return as_f(x); });
      break;
    case LaneOp::kSetpS:
      warp_setp(in.cmp, a, b, out, [](uint32_t x) { return as_s(x); });
      break;
    case LaneOp::kSetpU:
      warp_setp(in.cmp, a, b, out, [](uint32_t x) { return x; });
      break;
    // Memory reads stay masked per lane: an inactive lane's address may be
    // garbage, and the memory models assert on out-of-bounds access.
    case LaneOp::kLdGlobal:
      if (step_mem_proven_) {
        // Statically proven in bounds for every lane of every block: skip
        // the per-lane checks (bit-identical — they could never fire).
        for (uint32_t l = 0; l < kWarpSize; ++l) {
          if (!((exec_mask >> l) & 1u)) continue;
          res.addr[l] = a[l] + static_cast<uint32_t>(in.mem_offset);
          out[l] = ctx_.gmem->read_unchecked(res.addr[l]);
        }
        break;
      }
      for (uint32_t l = 0; l < kWarpSize; ++l) {
        if (!((exec_mask >> l) & 1u)) continue;
        const int64_t addr = static_cast<int64_t>(a[l]) + in.mem_offset;
        GPURF_CHECK(addr >= 0, "negative global address");
        res.addr[l] = static_cast<uint32_t>(addr);
        out[l] = ctx_.gmem->read(static_cast<uint32_t>(addr));
      }
      break;
    case LaneOp::kLdShared:
      if (step_mem_proven_) {
        for (uint32_t l = 0; l < kWarpSize; ++l) {
          if (!((exec_mask >> l) & 1u)) continue;
          res.addr[l] = a[l] + static_cast<uint32_t>(in.mem_offset);
          out[l] = shared_[res.addr[l]];
        }
        break;
      }
      for (uint32_t l = 0; l < kWarpSize; ++l) {
        if (!((exec_mask >> l) & 1u)) continue;
        const int64_t addr = static_cast<int64_t>(a[l]) + in.mem_offset;
        GPURF_CHECK(addr >= 0 &&
                        addr < static_cast<int64_t>(shared_.size()),
                    "shared load out of bounds @" << addr);
        res.addr[l] = static_cast<uint32_t>(addr);
        out[l] = shared_[static_cast<size_t>(addr)];
      }
      break;
    case LaneOp::kTex2d: {
      const auto& tex = ctx_.textures->at(in.tex);
      for (uint32_t l = 0; l < kWarpSize; ++l) {
        if (!((exec_mask >> l) & 1u)) continue;
        const int u = as_s(a[l]), v = as_s(b[l]);
        res.addr[l] = tex.texel_index(u, v);
        out[l] = from_f(tex.fetch(u, v));
      }
      break;
    }
    case LaneOp::kStore:
    case LaneOp::kControl:
      GPURF_ASSERT(false, "exec_warp: unexpected lane op");
      break;
  }

  if (dec.has_dst && !(ctx_.elide_dead_writes && dec.dead_dst))
    write_dst_warp(ws, in, exec_mask, out);
}

void BlockExec::write_dst_warp(WarpState& ws, const Instruction& in,
                               uint32_t exec_mask, const uint32_t* vals) {
  const uint32_t d = in.dst;
  const Type t = k_.regs[d].type;

  // Sliced-register-file model, warp-wide (§3.2.6, Value Truncator): every
  // f32 write through a narrow format is quantized for the active lanes.
  alignas(64) uint32_t quant[kWarpSize];
  const uint32_t* src = vals;
  if (t == Type::F32 && ctx_.precision && ctx_.precision->active()) {
    const auto& fmt = ctx_.precision->format(d);
    if (!fmt.is_fp32()) {
      for (uint32_t l = 0; l < kWarpSize; ++l) quant[l] = vals[l];
      gpurf::fp::quantize_warp(quant, exec_mask, fmt);
      src = quant;
    }
  }

  if (ctx_.range_check && ir::is_int(t)) {
    const auto& info = ctx_.range_check->regs[d];
    if (info.analyzed) {
      for (uint32_t l = 0; l < kWarpSize; ++l) {
        if (!((exec_mask >> l) & 1u)) continue;
        const int64_t v = (t == Type::S32)
                              ? static_cast<int64_t>(as_s(src[l]))
                              : static_cast<int64_t>(src[l]);
        GPURF_ASSERT(info.range.contains(v),
                     "range violation: %" << k_.regs[d].name << " = " << v
                                          << " outside " << info.range.str());
      }
    }
  }

  uint32_t* dst = ws.regs_.data() + size_t(d) * kWarpSize;
  if (exec_mask == 0xffffffffu) {
    for (uint32_t l = 0; l < kWarpSize; ++l) dst[l] = src[l];
  } else {
    for (uint32_t l = 0; l < kWarpSize; ++l)
      dst[l] = ((exec_mask >> l) & 1u) ? src[l] : dst[l];
  }
}

StepResult BlockExec::step(uint32_t w) {
  WarpState& ws = warps_[w];
  GPURF_ASSERT(!ws.done_, "step() on a finished warp");
  StackEntry& tos = ws.stack_.back();
  GPURF_ASSERT(tos.blk < ka_->num_blocks() &&
                   tos.inst < ka_->block_size(tos.blk),
               "pc out of range");
  const DecodedInst& dec = ka_->inst(tos.blk, tos.inst);
  const Instruction& in = *dec.in;

  StepResult res;
  res.inst = &in;

  // Guard mask, computed warp-wide: read the whole predicate row and build
  // the bit mask branch-free (restricting to tos.mask afterwards gives the
  // same result as testing it per lane).
  uint32_t exec_mask = tos.mask;
  if (in.guard != ir::kNoReg) {
    const uint32_t* g = ws.lanes(in.guard);
    uint32_t gm = 0;
    for (uint32_t l = 0; l < kWarpSize; ++l)
      gm |= (g[l] != 0 ? 1u : 0u) << l;
    exec_mask &= in.guard_neg ? ~gm : gm;
  }
  res.active_mask = exec_mask;
  ctx_.thread_insts += std::popcount(exec_mask);

  // Data-path execution (control instructions have no lane effects).  The
  // dispatch flags come predecoded from the kernel analysis, so the hot
  // loop performs no opcode-table lookups.
  // Dead-write elision (PR 9): a statically dead destination row is never
  // read again, so the writeback — and for pure ALU ops the whole lane
  // computation — can be skipped without observable effect.  Memory reads
  // keep their side effects (bounds checks, the res.addr trace) and only
  // drop the writeback; thread_insts was already counted above, so stats
  // are unchanged too.
  const bool elide = ctx_.elide_dead_writes && dec.dead_dst;
  // Bounds-check elision (ISSUE 10): when the static memory-access pass
  // proved every dynamic address of this site inside its target space for
  // this launch, the checks below can never fire and are skipped.
  step_mem_proven_ = ctx_.elide_bounds_checks && ctx_.mem_proven &&
                     ctx_.mem_proven[dec.flat];
  if (!dec.is_control && exec_mask != 0 && !(elide && !dec.is_mem_read)) {
    const bool has_dst = dec.has_dst && !elide;
    if (dec.is_store) {
      if (step_mem_proven_) {
        for (uint32_t l = 0; l < kWarpSize; ++l) {
          if (!((exec_mask >> l) & 1u)) continue;
          const uint32_t addr = read_operand(ws, in.srcs[0], l) +
                                static_cast<uint32_t>(in.mem_offset);
          res.addr[l] = addr;
          const uint32_t v = read_operand(ws, in.srcs[1], l);
          if (in.op == Opcode::ST_GLOBAL)
            ctx_.gmem->write_unchecked(addr, v);
          else
            shared_[addr] = v;
        }
      } else {
        for (uint32_t l = 0; l < kWarpSize; ++l) {
          if (!((exec_mask >> l) & 1u)) continue;
          const int64_t addr =
              static_cast<int64_t>(read_operand(ws, in.srcs[0], l)) +
              in.mem_offset;
          GPURF_CHECK(addr >= 0, "negative store address");
          res.addr[l] = static_cast<uint32_t>(addr);
          const uint32_t v = read_operand(ws, in.srcs[1], l);
          if (in.op == Opcode::ST_GLOBAL) {
            ctx_.gmem->write(static_cast<uint32_t>(addr), v);
          } else {
            GPURF_CHECK(addr < static_cast<int64_t>(shared_.size()),
                        "shared store out of bounds @" << addr);
            shared_[static_cast<size_t>(addr)] = v;
          }
        }
      }
    } else if (ctx_.use_soa) {
      // Warp-vectorized SoA data path (default).
      exec_warp(ws, dec, exec_mask, res);
    } else {
      // Scalar reference path, kept bit-for-bit equivalent for asserts and
      // differential fuzzing.
      for (uint32_t l = 0; l < kWarpSize; ++l) {
        if (!((exec_mask >> l) & 1u)) continue;
        const uint32_t v = exec_lane(ws, in, l, res);
        if (has_dst) write_dst(ws, in, l, v);
      }
    }
  }

  advance(ws, in, exec_mask, res);
  return res;
}

void BlockExec::advance(WarpState& ws, const Instruction& in,
                        uint32_t exec_mask, StepResult& res) {
  StackEntry& tos = ws.stack_.back();
  const uint32_t b = tos.blk;

  if (in.op == Opcode::RET) {
    GPURF_ASSERT(ws.stack_.size() == 1 && in.guard == ir::kNoReg,
                 "divergent or guarded RET is not supported");
    ws.done_ = true;
    res.warp_done = true;
    return;
  }
  if (in.op == Opcode::BAR) res.at_barrier = true;

  if (in.op == Opcode::BRA) {
    const uint32_t taken_blk = in.target;
    const uint32_t ft_blk = b + 1;
    const uint32_t taken = exec_mask;
    const uint32_t nottaken = tos.mask & ~exec_mask;
    if (nottaken == 0) {
      tos.blk = taken_blk;
      tos.inst = 0;
      pop_reconverged(ws);
    } else if (taken == 0) {
      GPURF_ASSERT(ft_blk < ka_->num_blocks(), "fallthrough out of range");
      tos.blk = ft_blk;
      tos.inst = 0;
      pop_reconverged(ws);
    } else {
      // Divergence: continue at the immediate post-dominator once both
      // sides reconverge (§3.1 lockstep execution).
      const uint32_t rpc = ka_->ipdom()[b];
      GPURF_ASSERT(rpc != ir::kNoBlock,
                   "divergent branch without reconvergence point");
      tos.blk = rpc;
      tos.inst = 0;
      ws.stack_.push_back(StackEntry{ft_blk, 0, rpc, nottaken});
      ws.stack_.push_back(StackEntry{taken_blk, 0, rpc, taken});
      // A side whose first block *is* the reconvergence point has nothing
      // to execute before reconverging (e.g. a loop-exit branch straight to
      // the join): pop it immediately so it waits in the continuation.
      pop_reconverged(ws);
    }
    return;
  }

  // Straight-line advance.
  if (tos.inst + 1 < ka_->block_size(b)) {
    ++tos.inst;
    return;
  }
  GPURF_ASSERT(b + 1 < ka_->num_blocks(), "control fell off the kernel");
  tos.blk = b + 1;
  tos.inst = 0;
  pop_reconverged(ws);
}

void BlockExec::pop_reconverged(WarpState& ws) {
  while (ws.stack_.size() > 1) {
    const StackEntry& t = ws.stack_.back();
    if (t.blk == t.rpc_blk && t.inst == 0) {
      ws.stack_.pop_back();
    } else {
      break;
    }
  }
}

void BlockExec::run_to_completion() {
  while (!all_done()) {
    bool progress = false;
    for (uint32_t w = 0; w < num_warps(); ++w) {
      while (!warps_[w].done()) {
        const StepResult r = step(w);
        progress = true;
        if (r.at_barrier) break;  // rotate to the next warp at barriers
      }
    }
    GPURF_ASSERT(progress, "block deadlocked");
  }
}

namespace {

/// Run the contiguous linear-grid-index range [lo, hi) of blocks serially.
void run_block_range(ExecContext& ctx, uint64_t lo, uint64_t hi) {
  const uint32_t gx = ctx.launch.grid_x;
  for (uint64_t i = lo; i < hi; ++i) {
    BlockExec be(ctx, static_cast<uint32_t>(i % gx),
                 static_cast<uint32_t>(i / gx));
    be.run_to_completion();
  }
}

}  // namespace

uint64_t run_functional(ExecContext& ctx) {
  GPURF_ASSERT(ctx.kernel && ctx.gmem, "incomplete ExecContext");
  // Hoist the static analysis out of the per-block loop: every BlockExec
  // of this launch shares one CFG/ipdom/decoded stream.
  if (!ctx.analysis) ctx.analysis = analyze_kernel(*ctx.kernel);
  ctx.thread_insts = 0;
  const uint64_t nblocks = ctx.launch.num_blocks();

  // Thread blocks are independent within a launch (barriers synchronise
  // warps of one block only), so the grid shards across the pool.  Each
  // shard executes a contiguous linear-grid range against a private copy of
  // global memory with a write log; the logs are replayed in grid order,
  // which reproduces the serial loop's final image and instruction count
  // for every kernel whose blocks do not read other blocks' writes (the
  // CUDA contract — see ExecContext::block_parallel).  Nested calls (tuner
  // probes already running on pool workers) and explicitly serialised
  // callers fall through to the serial loop.
  auto& pool = gpurf::common::ThreadPool::current();
  const bool parallel = ctx.block_parallel && nblocks > 1 &&
                        pool.size() > 1 && !gpurf::common::in_pool_worker();
  if (!parallel) {
    run_block_range(ctx, 0, nblocks);
    return ctx.thread_insts;
  }

  const size_t nshards =
      static_cast<size_t>(std::min<uint64_t>(nblocks, pool.size()));
  std::vector<GlobalMemory> shard_mem(nshards);
  std::vector<uint64_t> shard_insts(nshards, 0);
  pool.parallel_for(nshards, [&](size_t s) {
    const uint64_t lo = nblocks * s / nshards;
    const uint64_t hi = nblocks * (s + 1) / nshards;
    shard_mem[s] = *ctx.gmem;  // private image (write-combine buffer)
    shard_mem[s].begin_write_log();
    ExecContext sub = ctx;
    sub.gmem = &shard_mem[s];
    sub.thread_insts = 0;
    run_block_range(sub, lo, hi);
    shard_insts[s] = sub.thread_insts;
  });
  for (size_t s = 0; s < nshards; ++s) {
    ctx.gmem->merge_written(shard_mem[s]);
    ctx.thread_insts += shard_insts[s];
  }
  return ctx.thread_insts;
}

}  // namespace gpurf::exec
