#include "exec/interp.hpp"

#include <bit>
#include <cmath>

#include "common/bitutil.hpp"
#include "common/error.hpp"

namespace gpurf::exec {

namespace ir = gpurf::ir;
using ir::Instruction;
using ir::Opcode;
using ir::Type;

namespace {

int32_t as_s(uint32_t v) { return static_cast<int32_t>(v); }
float as_f(uint32_t v) { return bits_float(v); }
uint32_t from_s(int32_t v) { return static_cast<uint32_t>(v); }
uint32_t from_f(float v) { return float_bits(v); }

/// Wrapping 32-bit multiply (hardware semantics, no UB).
uint32_t mul32(uint32_t a, uint32_t b) {
  return static_cast<uint32_t>(
      static_cast<uint64_t>(a) * static_cast<uint64_t>(b));
}

int32_t sdiv(int32_t a, int32_t b) {
  if (b == 0) return 0;                      // deterministic, like saturating HW
  if (a == INT32_MIN && b == -1) return INT32_MIN;
  return a / b;
}
int32_t srem(int32_t a, int32_t b) {
  if (b == 0) return 0;
  if (a == INT32_MIN && b == -1) return 0;
  return a % b;
}

int32_t f2s(float v) {
  if (std::isnan(v)) return 0;
  if (v >= 2147483647.0f) return INT32_MAX;
  if (v <= -2147483648.0f) return INT32_MIN;
  return static_cast<int32_t>(v);  // trunc toward zero
}
uint32_t f2u(float v) {
  if (std::isnan(v) || v <= 0.0f) return 0;
  if (v >= 4294967295.0f) return UINT32_MAX;
  return static_cast<uint32_t>(v);
}

}  // namespace

BlockExec::BlockExec(ExecContext& ctx, uint32_t ctaid_x, uint32_t ctaid_y)
    : ctx_(ctx),
      k_(*ctx.kernel),
      ka_(ctx.analysis ? ctx.analysis : analyze_kernel(k_)),
      ctaid_x_(ctaid_x),
      ctaid_y_(ctaid_y) {
  const uint32_t tpb = ctx.launch.threads_per_block();
  const uint32_t nwarps = ctx.launch.warps_per_block();
  warps_.reserve(nwarps);
  for (uint32_t w = 0; w < nwarps; ++w) {
    const uint32_t first = w * kWarpSize;
    uint32_t valid = 0;
    for (uint32_t l = 0; l < kWarpSize; ++l)
      if (first + l < tpb) valid |= (1u << l);
    warps_.emplace_back(k_.num_regs(), w, valid);
  }
  shared_.assign((k_.shared_bytes + 3) / 4 + 1, 0);
}

bool BlockExec::all_done() const {
  for (const auto& w : warps_)
    if (!w.done()) return false;
  return true;
}

const Instruction* BlockExec::peek(uint32_t w) const {
  const WarpState& ws = warps_[w];
  if (ws.done()) return nullptr;
  const StackEntry& tos = ws.stack_.back();
  return ka_->inst(tos.blk, tos.inst).in;
}

uint32_t BlockExec::special_value(ir::Special s, uint32_t warp_in_block,
                                  uint32_t lane) const {
  const uint32_t linear = warp_in_block * kWarpSize + lane;
  const auto& lc = ctx_.launch;
  switch (s) {
    case ir::Special::TID_X: return linear % lc.block_x;
    case ir::Special::TID_Y: return linear / lc.block_x;
    case ir::Special::CTAID_X: return ctaid_x_;
    case ir::Special::CTAID_Y: return ctaid_y_;
    case ir::Special::NTID_X: return lc.block_x;
    case ir::Special::NTID_Y: return lc.block_y;
    case ir::Special::NCTAID_X: return lc.grid_x;
    case ir::Special::NCTAID_Y: return lc.grid_y;
  }
  return 0;
}

uint32_t BlockExec::read_operand(const WarpState& ws, const ir::Operand& o,
                                 uint32_t lane) const {
  switch (o.kind) {
    case ir::Operand::Kind::REG:
      return ws.reg(o.index, lane);
    case ir::Operand::Kind::IMM_I:
      return static_cast<uint32_t>(static_cast<int64_t>(o.imm_i));
    case ir::Operand::Kind::IMM_F:
      return from_f(o.imm_f);
    case ir::Operand::Kind::SPECIAL:
      return special_value(static_cast<ir::Special>(o.index),
                           ws.warp_in_block(), lane);
    case ir::Operand::Kind::PARAM:
      return ctx_.params.at(o.index);
  }
  return 0;
}

void BlockExec::write_dst(WarpState& ws, const Instruction& in, uint32_t lane,
                          uint32_t raw) {
  const uint32_t d = in.dst;
  const Type t = k_.regs[d].type;

  // Model the sliced register file: a value stored through a narrow float
  // format is quantized on every write (§3.2.6, Value Truncator).
  if (t == Type::F32 && ctx_.precision && ctx_.precision->active()) {
    const auto& fmt = ctx_.precision->format(d);
    if (!fmt.is_fp32())
      raw = from_f(gpurf::fp::quantize(as_f(raw), fmt));
  }

  // Soundness check: integer values must stay inside the statically
  // computed range (a violation is a range-analysis bug, not a data bug).
  if (ctx_.range_check && ir::is_int(t)) {
    const auto& info = ctx_.range_check->regs[d];
    if (info.analyzed) {
      const int64_t v = (t == Type::S32)
                            ? static_cast<int64_t>(as_s(raw))
                            : static_cast<int64_t>(raw);
      GPURF_ASSERT(info.range.contains(v),
                   "range violation: %" << k_.regs[d].name << " = " << v
                                        << " outside " << info.range.str());
    }
  }
  ws.set_reg(d, lane, raw);
}

uint32_t BlockExec::exec_lane(const WarpState& ws, const Instruction& in,
                              uint32_t lane, StepResult& res) const {
  auto S = [&](int i) { return read_operand(ws, in.srcs[i], lane); };
  const Type t = in.type;

  switch (in.op) {
    case Opcode::ADD:
      return t == Type::F32 ? from_f(as_f(S(0)) + as_f(S(1)))
                            : S(0) + S(1);
    case Opcode::SUB:
      return t == Type::F32 ? from_f(as_f(S(0)) - as_f(S(1)))
                            : S(0) - S(1);
    case Opcode::MUL:
      return t == Type::F32 ? from_f(as_f(S(0)) * as_f(S(1)))
                            : mul32(S(0), S(1));
    case Opcode::MAD:
      return t == Type::F32
                 ? from_f(as_f(S(0)) * as_f(S(1)) + as_f(S(2)))
                 : mul32(S(0), S(1)) + S(2);
    case Opcode::DIV:
      if (t == Type::F32) return from_f(as_f(S(0)) / as_f(S(1)));
      if (t == Type::U32) return S(1) == 0 ? 0u : S(0) / S(1);
      return from_s(sdiv(as_s(S(0)), as_s(S(1))));
    case Opcode::REM:
      if (t == Type::U32) return S(1) == 0 ? 0u : S(0) % S(1);
      return from_s(srem(as_s(S(0)), as_s(S(1))));
    case Opcode::MIN:
      if (t == Type::F32) return from_f(std::fmin(as_f(S(0)), as_f(S(1))));
      if (t == Type::U32) return std::min(S(0), S(1));
      return from_s(std::min(as_s(S(0)), as_s(S(1))));
    case Opcode::MAX:
      if (t == Type::F32) return from_f(std::fmax(as_f(S(0)), as_f(S(1))));
      if (t == Type::U32) return std::max(S(0), S(1));
      return from_s(std::max(as_s(S(0)), as_s(S(1))));
    case Opcode::ABS:
      if (t == Type::F32) return from_f(std::fabs(as_f(S(0))));
      return from_s(as_s(S(0)) < 0 ? -as_s(S(0)) : as_s(S(0)));
    case Opcode::NEG:
      if (t == Type::F32) return from_f(-as_f(S(0)));
      return from_s(-as_s(S(0)));
    case Opcode::AND: return S(0) & S(1);
    case Opcode::OR: return S(0) | S(1);
    case Opcode::XOR: return S(0) ^ S(1);
    case Opcode::NOT: return ~S(0);
    case Opcode::SHL: return S(0) << (S(1) & 31);
    case Opcode::SHR:
      if (t == Type::S32) return from_s(as_s(S(0)) >> (S(1) & 31));
      return S(0) >> (S(1) & 31);
    case Opcode::SIN: return from_f(std::sin(as_f(S(0))));
    case Opcode::COS: return from_f(std::cos(as_f(S(0))));
    case Opcode::EX2: return from_f(std::exp2(as_f(S(0))));
    case Opcode::LG2: return from_f(std::log2(as_f(S(0))));
    case Opcode::SQRT: return from_f(std::sqrt(as_f(S(0))));
    case Opcode::RSQRT: return from_f(1.0f / std::sqrt(as_f(S(0))));
    case Opcode::RCP: return from_f(1.0f / as_f(S(0)));
    case Opcode::MOV: return S(0);
    case Opcode::SELP: return S(2) != 0 ? S(0) : S(1);
    case Opcode::CVT: {
      const uint32_t v = S(0);
      if (in.cvt_src_type == Type::F32) {
        return in.type == Type::S32 ? from_s(f2s(as_f(v))) : f2u(as_f(v));
      }
      if (in.type == Type::F32) {
        return in.cvt_src_type == Type::S32
                   ? from_f(static_cast<float>(as_s(v)))
                   : from_f(static_cast<float>(v));
      }
      return v;  // s32 <-> u32: raw copy
    }
    case Opcode::SETP: {
      const uint32_t a = S(0), b = S(1);
      bool r = false;
      auto cmp3 = [&](auto x, auto y) {
        switch (in.cmp) {
          case ir::CmpOp::EQ: return x == y;
          case ir::CmpOp::NE: return x != y;
          case ir::CmpOp::LT: return x < y;
          case ir::CmpOp::LE: return x <= y;
          case ir::CmpOp::GT: return x > y;
          case ir::CmpOp::GE: return x >= y;
        }
        return false;
      };
      if (t == Type::F32) r = cmp3(as_f(a), as_f(b));
      else if (t == Type::U32) r = cmp3(a, b);
      else r = cmp3(as_s(a), as_s(b));
      return r ? 1u : 0u;
    }
    case Opcode::LD_GLOBAL: {
      const int64_t addr = static_cast<int64_t>(S(0)) + in.mem_offset;
      GPURF_ASSERT(addr >= 0, "negative global address");
      res.addr[lane] = static_cast<uint32_t>(addr);
      return ctx_.gmem->read(static_cast<uint32_t>(addr));
    }
    case Opcode::LD_SHARED: {
      const int64_t addr = static_cast<int64_t>(S(0)) + in.mem_offset;
      GPURF_ASSERT(addr >= 0 &&
                       addr < static_cast<int64_t>(shared_.size()),
                   "shared load out of bounds @" << addr);
      res.addr[lane] = static_cast<uint32_t>(addr);
      return shared_[static_cast<size_t>(addr)];
    }
    case Opcode::TEX2D: {
      const auto& tex = ctx_.textures->at(in.tex);
      const int u = as_s(S(0)), v = as_s(S(1));
      res.addr[lane] = tex.texel_index(u, v);
      return from_f(tex.fetch(u, v));
    }
    default:
      GPURF_ASSERT(false, "exec_lane: unexpected opcode");
      return 0;
  }
}

StepResult BlockExec::step(uint32_t w) {
  WarpState& ws = warps_[w];
  GPURF_ASSERT(!ws.done_, "step() on a finished warp");
  StackEntry& tos = ws.stack_.back();
  GPURF_ASSERT(tos.blk < ka_->num_blocks() &&
                   tos.inst < ka_->block_size(tos.blk),
               "pc out of range");
  const DecodedInst& dec = ka_->inst(tos.blk, tos.inst);
  const Instruction& in = *dec.in;

  StepResult res;
  res.inst = &in;

  // Guard mask.
  uint32_t exec_mask = tos.mask;
  if (in.guard != ir::kNoReg) {
    uint32_t g = 0;
    for (uint32_t l = 0; l < kWarpSize; ++l)
      if ((tos.mask >> l) & 1u)
        if (ws.reg(in.guard, l) != 0) g |= (1u << l);
    exec_mask &= in.guard_neg ? ~g : g;
  }
  res.active_mask = exec_mask;
  ctx_.thread_insts += std::popcount(exec_mask);

  // Data-path execution (control instructions have no lane effects).  The
  // dispatch flags come predecoded from the kernel analysis, so the hot
  // loop performs no opcode-table lookups.
  if (!dec.is_control) {
    const bool has_dst = dec.has_dst;
    if (dec.is_store) {
      for (uint32_t l = 0; l < kWarpSize; ++l) {
        if (!((exec_mask >> l) & 1u)) continue;
        const int64_t addr =
            static_cast<int64_t>(read_operand(ws, in.srcs[0], l)) +
            in.mem_offset;
        GPURF_ASSERT(addr >= 0, "negative store address");
        res.addr[l] = static_cast<uint32_t>(addr);
        const uint32_t v = read_operand(ws, in.srcs[1], l);
        if (in.op == Opcode::ST_GLOBAL) {
          ctx_.gmem->write(static_cast<uint32_t>(addr), v);
        } else {
          GPURF_ASSERT(addr < static_cast<int64_t>(shared_.size()),
                       "shared store out of bounds @" << addr);
          shared_[static_cast<size_t>(addr)] = v;
        }
      }
    } else {
      for (uint32_t l = 0; l < kWarpSize; ++l) {
        if (!((exec_mask >> l) & 1u)) continue;
        const uint32_t v = exec_lane(ws, in, l, res);
        if (has_dst) write_dst(ws, in, l, v);
      }
    }
  }

  advance(ws, in, exec_mask, res);
  return res;
}

void BlockExec::advance(WarpState& ws, const Instruction& in,
                        uint32_t exec_mask, StepResult& res) {
  StackEntry& tos = ws.stack_.back();
  const uint32_t b = tos.blk;

  if (in.op == Opcode::RET) {
    GPURF_ASSERT(ws.stack_.size() == 1 && in.guard == ir::kNoReg,
                 "divergent or guarded RET is not supported");
    ws.done_ = true;
    res.warp_done = true;
    return;
  }
  if (in.op == Opcode::BAR) res.at_barrier = true;

  if (in.op == Opcode::BRA) {
    const uint32_t taken_blk = in.target;
    const uint32_t ft_blk = b + 1;
    const uint32_t taken = exec_mask;
    const uint32_t nottaken = tos.mask & ~exec_mask;
    if (nottaken == 0) {
      tos.blk = taken_blk;
      tos.inst = 0;
      pop_reconverged(ws);
    } else if (taken == 0) {
      GPURF_ASSERT(ft_blk < ka_->num_blocks(), "fallthrough out of range");
      tos.blk = ft_blk;
      tos.inst = 0;
      pop_reconverged(ws);
    } else {
      // Divergence: continue at the immediate post-dominator once both
      // sides reconverge (§3.1 lockstep execution).
      const uint32_t rpc = ka_->ipdom()[b];
      GPURF_ASSERT(rpc != ir::kNoBlock,
                   "divergent branch without reconvergence point");
      tos.blk = rpc;
      tos.inst = 0;
      ws.stack_.push_back(StackEntry{ft_blk, 0, rpc, nottaken});
      ws.stack_.push_back(StackEntry{taken_blk, 0, rpc, taken});
      // A side whose first block *is* the reconvergence point has nothing
      // to execute before reconverging (e.g. a loop-exit branch straight to
      // the join): pop it immediately so it waits in the continuation.
      pop_reconverged(ws);
    }
    return;
  }

  // Straight-line advance.
  if (tos.inst + 1 < ka_->block_size(b)) {
    ++tos.inst;
    return;
  }
  GPURF_ASSERT(b + 1 < ka_->num_blocks(), "control fell off the kernel");
  tos.blk = b + 1;
  tos.inst = 0;
  pop_reconverged(ws);
}

void BlockExec::pop_reconverged(WarpState& ws) {
  while (ws.stack_.size() > 1) {
    const StackEntry& t = ws.stack_.back();
    if (t.blk == t.rpc_blk && t.inst == 0) {
      ws.stack_.pop_back();
    } else {
      break;
    }
  }
}

void BlockExec::run_to_completion() {
  while (!all_done()) {
    bool progress = false;
    for (uint32_t w = 0; w < num_warps(); ++w) {
      while (!warps_[w].done()) {
        const StepResult r = step(w);
        progress = true;
        if (r.at_barrier) break;  // rotate to the next warp at barriers
      }
    }
    GPURF_ASSERT(progress, "block deadlocked");
  }
}

uint64_t run_functional(ExecContext& ctx) {
  GPURF_ASSERT(ctx.kernel && ctx.gmem, "incomplete ExecContext");
  // Hoist the static analysis out of the per-block loop: every BlockExec
  // of this launch shares one CFG/ipdom/decoded stream.
  if (!ctx.analysis) ctx.analysis = analyze_kernel(*ctx.kernel);
  ctx.thread_insts = 0;
  for (uint32_t by = 0; by < ctx.launch.grid_y; ++by)
    for (uint32_t bx = 0; bx < ctx.launch.grid_x; ++bx) {
      BlockExec be(ctx, bx, by);
      be.run_to_completion();
    }
  return ctx.thread_insts;
}

}  // namespace gpurf::exec
