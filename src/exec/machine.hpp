#pragma once
// Machine-level state shared by the functional interpreter and the timing
// simulator: global memory, textures, launch parameters, and the optional
// precision / range-check hooks.

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "analysis/range_analysis.hpp"
#include "common/bitutil.hpp"
#include "common/error.hpp"
#include "fp/format.hpp"
#include "ir/kernel.hpp"

namespace gpurf::exec {

class KernelAnalysis;

/// Flat word-addressed global memory.  Buffers are bump-allocated; an
/// address is an index into the word array.  A 128-byte coalescing line is
/// 32 consecutive words.
class GlobalMemory {
 public:
  /// Allocate `nwords` zero-initialised words; returns the base address.
  uint32_t alloc(size_t nwords) {
    const uint32_t base = static_cast<uint32_t>(words_.size());
    words_.resize(words_.size() + nwords, 0);
    if (!dirty_.empty()) dirty_.resize((words_.size() + 63) / 64, 0);
    return base;
  }

  uint32_t alloc(std::span<const uint32_t> contents) {
    const uint32_t base = alloc(contents.size());
    std::copy(contents.begin(), contents.end(), words_.begin() + base);
    return base;
  }

  uint32_t alloc_f32(std::span<const float> contents) {
    const uint32_t base = alloc(contents.size());
    for (size_t i = 0; i < contents.size(); ++i)
      words_[base + i] = gpurf::float_bits(contents[i]);
    return base;
  }

  // Out-of-bounds accesses raise gpurf::Error (GPURF_CHECK) rather than
  // aborting: under soft-error injection (PR 7) a flipped address register
  // can legitimately step outside every buffer, and that must surface as a
  // recoverable detected-unrecoverable-error at the Engine boundary, not
  // terminate the process.  Well-formed workloads never hit these.
  uint32_t read(uint32_t addr) const {
    GPURF_CHECK(addr < words_.size(), "global load out of bounds @" << addr);
    return words_[addr];
  }
  void write(uint32_t addr, uint32_t v) {
    GPURF_CHECK(addr < words_.size(),
                "global store out of bounds @" << addr);
    words_[addr] = v;
    if (!dirty_.empty()) dirty_[addr >> 6] |= uint64_t{1} << (addr & 63);
  }

  // Unchecked variants for accesses the static memory pass proved in
  // bounds (ExecContext::elide_bounds_checks): the proof guarantees the
  // elided check could never have fired, so behaviour is bit-identical by
  // construction.  write_unchecked still feeds the write-log bitmap —
  // elision must never change what block-parallel merge copies.
  uint32_t read_unchecked(uint32_t addr) const { return words_[addr]; }
  void write_unchecked(uint32_t addr, uint32_t v) {
    words_[addr] = v;
    if (!dirty_.empty()) dirty_[addr >> 6] |= uint64_t{1} << (addr & 63);
  }

  /// Write-combine support for block-parallel functional execution: a shard
  /// runs its blocks against a private copy of the memory image with dirty
  /// tracking enabled, and the owner merges each shard's written words in
  /// grid order.  The dirty set is a bitmap (one bit per word), so tracking
  /// cost is bounded by the image size, not by the dynamic store count.
  void begin_write_log() { dirty_.assign((words_.size() + 63) / 64, 0); }

  /// Copy every word `shard` (a private copy of this memory) has written
  /// since begin_write_log() into this image.  Applying shards in ascending
  /// grid order reproduces the serial schedule's final image for every
  /// kernel whose blocks do not read each other's writes (inter-block gmem
  /// communication within one launch is unordered on real hardware too);
  /// overlapping writes resolve to the highest grid index, as serially.
  void merge_written(const GlobalMemory& shard) {
    GPURF_ASSERT(shard.words_.size() == words_.size(),
                 "write-combine merge from a diverged memory image");
    for (size_t w = 0; w < shard.dirty_.size(); ++w) {
      uint64_t bits = shard.dirty_[w];
      while (bits) {
        const int b = std::countr_zero(bits);
        bits &= bits - 1;
        const size_t addr = w * 64 + static_cast<size_t>(b);
        words_[addr] = shard.words_[addr];
      }
    }
  }

  /// Word addresses written since begin_write_log(), ascending.  The fuzz
  /// soundness oracle diffs these per-block dynamic store sets against the
  /// static footprint hulls and disjointness verdicts (ISSUE 10); also
  /// handy as a diagnostic.
  std::vector<uint32_t> written_words() const {
    std::vector<uint32_t> out;
    for (size_t w = 0; w < dirty_.size(); ++w) {
      uint64_t bits = dirty_[w];
      while (bits) {
        const int b = std::countr_zero(bits);
        bits &= bits - 1;
        out.push_back(static_cast<uint32_t>(w * 64 + static_cast<size_t>(b)));
      }
    }
    return out;
  }

  std::span<const uint32_t> view(uint32_t base, size_t n) const {
    GPURF_ASSERT(base + n <= words_.size(), "view out of bounds");
    return {words_.data() + base, n};
  }

  std::vector<float> read_f32(uint32_t base, size_t n) const {
    std::vector<float> out(n);
    for (size_t i = 0; i < n; ++i)
      out[i] = gpurf::bits_float(read(base + static_cast<uint32_t>(i)));
    return out;
  }

  size_t size() const { return words_.size(); }

 private:
  std::vector<uint32_t> words_;
  /// Dirty-word bitmap; non-empty once begin_write_log() armed tracking.
  std::vector<uint64_t> dirty_;
};

/// 2-D float texture with nearest filtering and clamp-to-edge addressing,
/// fetched through the texture cache in the timing model.
struct Texture {
  int width = 0;
  int height = 0;
  std::vector<float> texels;

  float fetch(int u, int v) const {
    u = std::clamp(u, 0, width - 1);
    v = std::clamp(v, 0, height - 1);
    return texels[size_t(v) * width + u];
  }
  /// Linear texel index after clamping (used as the cache key).
  uint32_t texel_index(int u, int v) const {
    u = std::clamp(u, 0, width - 1);
    v = std::clamp(v, 0, height - 1);
    return static_cast<uint32_t>(v) * width + static_cast<uint32_t>(u);
  }
};

/// Per-f32-register storage format assignment produced by the precision
/// tuner.  Empty per_reg means "everything is binary32".
struct PrecisionMap {
  std::vector<gpurf::fp::FloatFormat> per_reg;

  bool active() const { return !per_reg.empty(); }
  const gpurf::fp::FloatFormat& format(uint32_t reg) const {
    return per_reg.at(reg);
  }
  /// Total f32 slice count under this assignment (8 slices when inactive).
  int slices(uint32_t reg) const {
    return active() ? per_reg.at(reg).slices() : 8;
  }
};

/// Everything a kernel launch needs, plus optional instrumentation:
///  * precision — quantize every f32 register write through its format
///    (models the sliced register file's storage, §3.2.6),
///  * range_check — assert every integer register write stays inside the
///    statically computed range (validates analysis soundness).
struct ExecContext {
  const gpurf::ir::Kernel* kernel = nullptr;
  gpurf::ir::LaunchConfig launch;
  GlobalMemory* gmem = nullptr;
  const std::vector<Texture>* textures = nullptr;
  std::vector<uint32_t> params;

  const PrecisionMap* precision = nullptr;
  const analysis::RangeAnalysisResult* range_check = nullptr;

  /// Optional precomputed kernel analysis (CFG, ipdoms, decoded stream).
  /// When unset, BlockExec fetches one from the process-wide cache; callers
  /// that launch many blocks or probes should set it once up front.
  std::shared_ptr<const KernelAnalysis> analysis;

  /// Execution strategy.  use_soa selects the warp-vectorized SoA data path
  /// (false = the scalar exec_lane reference, kept for asserts/fuzzing);
  /// it is bit-for-bit neutral unconditionally.  block_parallel lets
  /// run_functional shard independent grid blocks across the thread pool
  /// (automatically serial inside pool workers); it reproduces the serial
  /// schedule exactly for kernels whose blocks never *read* gmem written by
  /// another block in the same launch — the CUDA contract (blocks are
  /// unordered; such reads are races on real hardware too).  Since ISSUE 10
  /// this is no longer an unchecked precondition: Workload::run consults
  /// the static memory-access analysis (analysis/memory_access.hpp) and
  /// only keeps block_parallel when the no-cross-block-reads property is
  /// *proven* for the launch (or the workload carries a documented
  /// assume_disjoint waiver); unproven kernels silently take the
  /// bit-identical serial path.  Callers driving ExecContext directly
  /// still own the contract themselves.
  bool use_soa = true;
  bool block_parallel = true;

  /// Skip quantize/range-check/writeback for destination rows whose
  /// register is statically dead at the write point (PR 9) — pure ALU
  /// instructions with a dead destination skip the data path entirely;
  /// memory reads still execute (bounds checks and the StepResult address
  /// trace are observable) but drop the dead writeback.  Architectural
  /// outputs are bit-identical either way; the flag only trades replay
  /// time.  Off by default so the timing simulator's per-instruction
  /// machinery (and the soft-error model's register images) see every
  /// write exactly as before.
  bool elide_dead_writes = false;

  /// Skip the dynamic bounds check (and the addr >= 0 guard) for memory
  /// instructions the static memory-access pass proved in bounds against
  /// this launch (ISSUE 10).  `mem_proven` is a caller-owned per-
  /// flattened-instruction flag array (DecodedInst::flat indexes it; 1 =
  /// every dynamic address of that site is statically inside the target
  /// space).  Bit-identical by construction — a proven check can never
  /// fire.  Off by default: the timing simulator's soft-error model
  /// *relies* on checks firing for flipped address registers (DUE
  /// detection), so only functional replay turns this on
  /// (workloads::RunOptions::elide_bounds_checks).
  bool elide_bounds_checks = false;
  const uint8_t* mem_proven = nullptr;

  // Statistics accumulated during execution.  Under block-parallel runs
  // thread_insts is a per-shard reduction folded in grid order, never a
  // shared counter.
  uint64_t thread_insts = 0;
};

}  // namespace gpurf::exec
