#include "exec/kernel_analysis.hpp"

#include <mutex>
#include <unordered_map>

namespace gpurf::exec {

namespace ir = gpurf::ir;

namespace {

/// Resolve the fused (opcode, type) lane operation.  The mapping mirrors
/// exec_lane's runtime branches exactly, including the CVT quirk that a
/// float source dominates the decision (dst S32 -> f2s, anything else ->
/// f2u), so SoA and scalar execution can never disagree.
LaneOp classify_lane_op(const ir::Instruction& in) {
  using ir::Opcode;
  using ir::Type;
  const bool f = in.type == Type::F32;
  const bool s = in.type == Type::S32;
  switch (in.op) {
    case Opcode::ADD: return f ? LaneOp::kAddF : LaneOp::kAddI;
    case Opcode::SUB: return f ? LaneOp::kSubF : LaneOp::kSubI;
    case Opcode::MUL: return f ? LaneOp::kMulF : LaneOp::kMulI;
    case Opcode::MAD: return f ? LaneOp::kMadF : LaneOp::kMadI;
    case Opcode::DIV:
      return f ? LaneOp::kDivF : (s ? LaneOp::kDivS : LaneOp::kDivU);
    case Opcode::REM: return s ? LaneOp::kRemS : LaneOp::kRemU;
    case Opcode::MIN:
      return f ? LaneOp::kMinF : (s ? LaneOp::kMinS : LaneOp::kMinU);
    case Opcode::MAX:
      return f ? LaneOp::kMaxF : (s ? LaneOp::kMaxS : LaneOp::kMaxU);
    case Opcode::ABS: return f ? LaneOp::kAbsF : LaneOp::kAbsI;
    case Opcode::NEG: return f ? LaneOp::kNegF : LaneOp::kNegI;
    case Opcode::AND: return LaneOp::kAnd;
    case Opcode::OR: return LaneOp::kOr;
    case Opcode::XOR: return LaneOp::kXor;
    case Opcode::NOT: return LaneOp::kNot;
    case Opcode::SHL: return LaneOp::kShl;
    case Opcode::SHR: return s ? LaneOp::kShrS : LaneOp::kShrU;
    case Opcode::SIN: return LaneOp::kSin;
    case Opcode::COS: return LaneOp::kCos;
    case Opcode::EX2: return LaneOp::kEx2;
    case Opcode::LG2: return LaneOp::kLg2;
    case Opcode::SQRT: return LaneOp::kSqrt;
    case Opcode::RSQRT: return LaneOp::kRsqrt;
    case Opcode::RCP: return LaneOp::kRcp;
    case Opcode::MOV: return LaneOp::kMov;
    case Opcode::SELP: return LaneOp::kSelp;
    case Opcode::CVT:
      if (in.cvt_src_type == Type::F32)
        return in.type == Type::S32 ? LaneOp::kCvtF2S : LaneOp::kCvtF2U;
      if (in.type == Type::F32)
        return in.cvt_src_type == Type::S32 ? LaneOp::kCvtS2F
                                            : LaneOp::kCvtU2F;
      return LaneOp::kCvtBits;
    case Opcode::SETP:
      return f ? LaneOp::kSetpF
               : (in.type == Type::U32 ? LaneOp::kSetpU : LaneOp::kSetpS);
    case Opcode::LD_GLOBAL: return LaneOp::kLdGlobal;
    case Opcode::LD_SHARED: return LaneOp::kLdShared;
    case Opcode::TEX2D: return LaneOp::kTex2d;
    case Opcode::ST_GLOBAL:
    case Opcode::ST_SHARED: return LaneOp::kStore;
    case Opcode::BRA:
    case Opcode::RET:
    case Opcode::BAR: return LaneOp::kControl;
  }
  return LaneOp::kControl;
}

}  // namespace

KernelAnalysis::KernelAnalysis(const ir::Kernel& k)
    : cfg_(analysis::build_cfg(k)),
      ipdom_(analysis::compute_ipdom(cfg_)),
      dataflow_(analysis::compute_dataflow(k, cfg_)),
      fingerprint_(fingerprint(k)) {
  block_first_.reserve(k.blocks.size());
  block_size_.reserve(k.blocks.size());
  size_t total = 0;
  for (const auto& b : k.blocks) total += b.insts.size();
  decoded_.reserve(total);
  for (uint32_t blk = 0; blk < k.blocks.size(); ++blk) {
    const auto& b = k.blocks[blk];
    block_first_.push_back(static_cast<uint32_t>(decoded_.size()));
    block_size_.push_back(static_cast<uint32_t>(b.insts.size()));
    for (uint32_t i = 0; i < b.insts.size(); ++i) {
      const auto& in = b.insts[i];
      DecodedInst d;
      d.in = &in;
      d.lane_op = classify_lane_op(in);
      d.num_srcs = in.num_srcs;
      d.has_dst = in.info().has_dst;
      d.is_store =
          in.op == ir::Opcode::ST_GLOBAL || in.op == ir::Opcode::ST_SHARED;
      d.is_control = in.op == ir::Opcode::BRA || in.op == ir::Opcode::RET ||
                     in.op == ir::Opcode::BAR;
      d.is_mem_read = d.lane_op == LaneOp::kLdGlobal ||
                      d.lane_op == LaneOp::kLdShared ||
                      d.lane_op == LaneOp::kTex2d;
      d.dead_dst = d.has_dst && dataflow_.dst_dead(blk, i);
      d.flat = static_cast<uint32_t>(decoded_.size());
      decoded_.push_back(d);
    }
  }
}

uint64_t KernelAnalysis::fingerprint(const ir::Kernel& k) {
  // FNV-1a over the fields that determine control flow and decoding, AND
  // over the addresses of the instruction storage itself.  The decoded
  // stream holds pointers into k.blocks[i].insts; a cache hit is only
  // sound if the instructions the entry points at are the ones currently
  // live at those addresses.  Mixing insts.data() in means a re-parsed
  // kernel at a reused Kernel address cannot alias a stale entry: either
  // its vectors landed elsewhere (hash differs -> rebuild) or they landed
  // on the very same storage with the same content (pointers valid).
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(k.num_regs());
  mix(k.blocks.size());
  for (const auto& b : k.blocks) {
    mix(reinterpret_cast<uintptr_t>(b.insts.data()));
    mix(b.insts.size());
    for (const auto& in : b.insts) {
      mix(static_cast<uint64_t>(in.op));
      mix(static_cast<uint64_t>(in.type));
      mix(in.dst);
      mix(in.target);
      mix(in.guard);
      mix(static_cast<uint64_t>(in.num_srcs));
    }
  }
  return h;
}

std::shared_ptr<const KernelAnalysis> AnalysisCache::get(const ir::Kernel& k) {
  const uint64_t fp = KernelAnalysis::fingerprint(k);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(&k);
    if (it != cache_.end() && it->second.fingerprint == fp) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second.analysis;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  // Build outside the lock: analyses of distinct kernels proceed in
  // parallel, and a racing duplicate build of the same kernel is benign
  // (last writer wins, both results are equivalent).
  auto built = std::make_shared<const KernelAnalysis>(k);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (cache_.size() >= kMaxEntries) cache_.clear();
    cache_[&k] = Entry{fp, built};
  }
  return built;
}

size_t AnalysisCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

AnalysisCache& default_analysis_cache() {
  static AnalysisCache cache;
  return cache;
}

std::shared_ptr<const KernelAnalysis> analyze_kernel(const ir::Kernel& k) {
  AnalysisCache* cache = detail::tl_current_analysis_cache;
  return (cache ? *cache : default_analysis_cache()).get(k);
}

}  // namespace gpurf::exec
