#pragma once
// Deterministic pseudo-random number generation.
//
// Every workload input, texture and sample set in the reproduction is
// generated from an explicitly seeded generator so that analyses, quality
// scores and simulator statistics are bit-reproducible across runs and
// machines.  PCG32 (O'Neill 2014) is used: small state, good quality, and a
// streaming interface that is cheap enough for per-thread use inside kernels.

#include <cstdint>

namespace gpurf {

/// PCG32: 64-bit state, 32-bit output, period 2^64 per stream.
class Pcg32 {
 public:
  explicit Pcg32(uint64_t seed = 0x853c49e6748fea9bULL,
                 uint64_t stream = 0xda3e39cb94b95bdbULL) {
    state_ = 0;
    inc_ = (stream << 1) | 1u;
    next_u32();
    state_ += seed;
    next_u32();
  }

  uint32_t next_u32() {
    const uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const uint32_t xorshifted =
        static_cast<uint32_t>(((old >> 18) ^ old) >> 27);
    const uint32_t rot = static_cast<uint32_t>(old >> 59);
    return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
  }

  /// Uniform in [0, bound) without modulo bias.
  uint32_t next_below(uint32_t bound) {
    if (bound <= 1) return 0;
    const uint32_t threshold = (-bound) % bound;
    for (;;) {
      const uint32_t r = next_u32();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform float in [0, 1).
  float next_float() {
    return static_cast<float>(next_u32() >> 8) * (1.0f / 16777216.0f);
  }

  /// Uniform float in [lo, hi).
  float next_float(float lo, float hi) {
    return lo + (hi - lo) * next_float();
  }

 private:
  uint64_t state_;
  uint64_t inc_;
};

/// SplitMix64 — used to derive independent seeds from one master seed.
inline uint64_t splitmix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace gpurf
