#pragma once
// Small string utilities for the assembler and report printers.

#include <string>
#include <string_view>
#include <vector>

namespace gpurf {

/// Strip leading and trailing whitespace.
std::string_view trim(std::string_view s);

/// Split on a delimiter character; empty fields are kept.
std::vector<std::string_view> split(std::string_view s, char delim);

/// Split on runs of whitespace; empty fields are dropped.
std::vector<std::string_view> split_ws(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string strprintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace gpurf
