#pragma once
// Cooperative cancellation and progress reporting for long-running work
// (ISSUE 4).
//
// A CancelToken is shared between a job's owner (who may cancel() it or arm
// a deadline) and the worker executing the job.  The worker polls it at
// natural checkpoints — between tuner probe batches, between pipeline
// stages, every few thousand simulated cycles — by calling checkpoint(),
// which throws CancelledError once a stop has been requested.  Because the
// checkpoints sit *between* units of work, a cancelled computation never
// leaves a partially-written memo or cache entry behind: either a unit
// completed and its results are consistent, or it never started.
//
// The token doubles as the job's progress mailbox: the worker stores its
// current stage and coarse counters (tuner pass / evaluations, simulated
// cycles) with relaxed atomics, and observers read them without
// synchronising with the computation.  Keeping both faces on one object
// means the lower layers (tuning, workloads, sim) receive exactly one
// pointer and stay ignorant of the serving API above them.

#include <atomic>
#include <chrono>
#include <stdexcept>

namespace gpurf::common {

/// Why a token asked the worker to stop.
enum class StopReason { kNone, kCancelled, kDeadline };

/// Coarse phase of a job, written by the worker, read by observers.  The
/// order mirrors the paper's Fig.-7 flow plus the timing simulation.
enum class JobStage : int {
  kQueued = 0,
  kRanges,       ///< integer range analysis (§4.2)
  kTuning,       ///< float precision tuning (§4.1)
  kValidating,   ///< batched final validation probes
  kAllocating,   ///< slice allocation (§4.3)
  kSimulating,   ///< cycle-level timing simulation (§3, §6)
  kFinished,
};

inline const char* job_stage_name(JobStage s) {
  switch (s) {
    case JobStage::kQueued: return "queued";
    case JobStage::kRanges: return "ranges";
    case JobStage::kTuning: return "tuning";
    case JobStage::kValidating: return "validating";
    case JobStage::kAllocating: return "allocating";
    case JobStage::kSimulating: return "simulating";
    case JobStage::kFinished: return "finished";
  }
  return "unknown";
}

/// Thrown by CancelToken::checkpoint() when a stop was requested.  NOT
/// derived from gpurf::Error on purpose: the Engine's catch(Error) clauses
/// map recoverable core failures to FailedPrecondition, while cancellation
/// must surface as kCancelled / kDeadlineExceeded — keeping the types
/// distinct makes it impossible to conflate the two paths.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(StopReason reason)
      : std::runtime_error(reason == StopReason::kDeadline
                               ? "deadline exceeded"
                               : "cancelled"),
        reason_(reason) {}

  StopReason reason() const { return reason_; }

 private:
  StopReason reason_;
};

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  // ------------------------------------------------------------- control
  void cancel() { cancelled_.store(true, std::memory_order_release); }

  /// Arm an absolute deadline; the worker stops at its next checkpoint
  /// after this instant.  Call at most once, before the worker starts.
  void set_deadline(Clock::time_point tp) {
    deadline_ns_.store(tp.time_since_epoch().count(),
                       std::memory_order_release);
  }

  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_acquire) != 0;
  }

  Clock::time_point deadline() const {
    return Clock::time_point(
        Clock::duration(deadline_ns_.load(std::memory_order_acquire)));
  }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Current stop request: explicit cancellation wins over the deadline so
  /// a user action is never reported as a timeout.
  StopReason stop_reason() const {
    if (cancelled()) return StopReason::kCancelled;
    const int64_t dl = deadline_ns_.load(std::memory_order_acquire);
    if (dl != 0 && Clock::now().time_since_epoch().count() >= dl)
      return StopReason::kDeadline;
    return StopReason::kNone;
  }

  /// Cooperative checkpoint: throws CancelledError once a stop has been
  /// requested, otherwise returns immediately.
  void checkpoint() const {
    const StopReason r = stop_reason();
    if (r != StopReason::kNone) throw CancelledError(r);
  }

  // ------------------------------------------------------------ progress
  void set_stage(JobStage s) {
    stage_.store(static_cast<int>(s), std::memory_order_relaxed);
  }
  JobStage stage() const {
    return static_cast<JobStage>(stage_.load(std::memory_order_relaxed));
  }

  /// Coarse worker counters (relaxed: monotone hints, not synchronisation).
  std::atomic<int> tuner_pass{0};          ///< current fixpoint pass (1-based)
  std::atomic<int> tuner_evaluations{0};   ///< quality probes so far
  std::atomic<uint64_t> sim_cycles{0};     ///< simulated cycles so far
  std::atomic<int> campaign_maps_done{0};  ///< fault maps finished (PR 6)
  std::atomic<int> campaign_maps_total{0}; ///< fault maps in the campaign

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{0};  ///< steady-clock ns; 0 = none
  std::atomic<int> stage_{0};
};

}  // namespace gpurf::common
