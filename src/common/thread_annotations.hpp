#pragma once
// Clang Thread Safety Analysis wiring (ISSUE 10 satellite): capability
// macros plus an annotated Mutex/MutexLock pair so -Wthread-safety can
// statically check the lock discipline of the Engine job queue, the
// Server connection registry, the PipelineCache computing latch and the
// EngineFleet shard table.  Under non-Clang compilers every macro expands
// to nothing and Mutex degrades to a plain std::mutex wrapper; the CI
// clang job builds with -Werror=thread-safety as the enforcement point.
//
// Condition variables: std::condition_variable needs the raw
// std::unique_lock<std::mutex>, which MutexLock::native() exposes.  A
// cv wait releases and reacquires the mutex, which is capability-neutral
// (held before, held after), so the analysis stays sound; wait predicates
// run with the lock held but are separate functions to the analysis, so
// they carry GPURF_NO_THREAD_SAFETY_ANALYSIS.

#include <mutex>

#if defined(__clang__)
#define GPURF_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GPURF_THREAD_ANNOTATION(x)
#endif

#define GPURF_CAPABILITY(x) GPURF_THREAD_ANNOTATION(capability(x))
#define GPURF_SCOPED_CAPABILITY GPURF_THREAD_ANNOTATION(scoped_lockable)
#define GPURF_GUARDED_BY(x) GPURF_THREAD_ANNOTATION(guarded_by(x))
#define GPURF_PT_GUARDED_BY(x) GPURF_THREAD_ANNOTATION(pt_guarded_by(x))
#define GPURF_REQUIRES(...) \
  GPURF_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define GPURF_ACQUIRE(...) \
  GPURF_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define GPURF_RELEASE(...) \
  GPURF_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define GPURF_EXCLUDES(...) GPURF_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define GPURF_NO_THREAD_SAFETY_ANALYSIS \
  GPURF_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace gpurf::common {

/// std::mutex with the capability attribute the analysis tracks.
class GPURF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GPURF_ACQUIRE() { mu_.lock(); }
  void unlock() GPURF_RELEASE() { mu_.unlock(); }

  /// Raw mutex, only for MutexLock's unique_lock (condvar waits).
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII scope lock (the lock_guard / unique_lock replacement for Mutex).
/// lock()/unlock() support the hand-over-hand patterns (compute outside
/// the latch, re-lock to publish); native() feeds condition_variable.
class GPURF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GPURF_ACQUIRE(mu) : lock_(mu.native()) {}
  ~MutexLock() GPURF_RELEASE() {}
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void lock() GPURF_ACQUIRE() { lock_.lock(); }
  void unlock() GPURF_RELEASE() { lock_.unlock(); }
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace gpurf::common
