#pragma once
// Deterministic thread pool for the analysis/tuning pipeline.
//
// Design constraints (see ISSUE 1):
//  * work-stealing-free: parallel_for partitions [0, n) into contiguous
//    static shards, one per thread, so the set of indices a thread runs is
//    a pure function of (n, num_threads) — no scheduling races leak into
//    iteration order within a shard;
//  * deterministic results: callers only submit independent iterations
//    whose writes go to disjoint slots, so the combined result is
//    identical to the serial loop regardless of shard interleaving;
//  * nested calls degrade gracefully: a parallel_for issued from inside a
//    worker runs inline on that worker (no deadlock, no oversubscription).
//
// Thread count: GPURF_THREADS environment variable when set (>= 1),
// otherwise std::thread::hardware_concurrency().  Tests and benches may
// resize() the singleton at runtime to compare serial vs parallel runs in
// one process.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace gpurf::common {

class ThreadPool;

namespace detail {
inline thread_local bool tl_in_pool_worker = false;
/// Pool bound to the calling thread by ScopedPool (an Engine executing
/// work on behalf of a session); null means "use the process-wide pool".
inline thread_local ThreadPool* tl_current_pool = nullptr;
}  // namespace detail

/// True when the calling thread is executing inside a parallel_for shard.
/// Parallel facilities that would otherwise fan out (e.g. the interpreter's
/// block-parallel grid execution) consult this to degrade to their serial
/// path instead of queueing nested work that runs inline anyway.
inline bool in_pool_worker() { return detail::tl_in_pool_worker; }

/// Number of threads the pool uses by default: GPURF_THREADS when set,
/// else hardware concurrency (always >= 1).
inline int default_thread_count() {
  if (const char* env = std::getenv("GPURF_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

class ThreadPool {
 public:
  explicit ThreadPool(int threads) { spawn(threads); }
  ~ThreadPool() { shutdown(); }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Process-wide pool shared by the tuner, probes and pipeline.
  static ThreadPool& instance() {
    static ThreadPool pool(default_thread_count());
    return pool;
  }

  /// Pool the calling thread should fan work out on: the ScopedPool-bound
  /// pool when an Engine is driving this thread, else the shared instance.
  /// All pipeline-internal parallelism routes through here so that work an
  /// Engine executes lands on that Engine's own pool.
  static ThreadPool& current() {
    return detail::tl_current_pool ? *detail::tl_current_pool : instance();
  }

  /// Total execution width including the calling thread.
  int size() const { return num_threads_; }

  /// Re-target the pool (joins workers; callers must not hold jobs).
  void resize(int threads) {
    if (threads < 1) threads = 1;
    std::lock_guard<std::mutex> submit(submit_mu_);
    if (threads == num_threads_) return;
    shutdown();
    spawn(threads);
  }

  /// Run fn(i) for every i in [0, n).  Blocks until all iterations finish.
  /// The calling thread executes shard 0; workers execute shards 1..T-1.
  /// The first exception thrown by any iteration is rethrown here.
  void parallel_for(size_t n, const std::function<void(size_t)>& fn) {
    if (n == 0) return;
    // Serial fast path: one thread, one item, or a nested call from a
    // worker (which would deadlock waiting on its own pool).
    if (num_threads_ <= 1 || n == 1 || detail::tl_in_pool_worker) {
      for (size_t i = 0; i < n; ++i) fn(i);
      return;
    }

    // NOTE: parallel_for is fork-join for *short* fan-outs — it holds
    // submit_mu_ for the duration of the job, so long-resident occupants
    // (e.g. the sharded timing simulator, whose shards live for the whole
    // run) must NOT route through the pool: they would serialise every
    // other session's probe batches — and with them their cancellation
    // checkpoints — behind a multi-second mutex hold.  sim/gpu.cpp spawns
    // a dedicated, globally-gated shard crew instead, sized by size().
    std::lock_guard<std::mutex> submit(submit_mu_);
    const int nshards =
        static_cast<int>(std::min<size_t>(n, static_cast<size_t>(num_threads_)));
    const std::function<void(int)> shard = [&, nshards](int s) {
      // Contiguous static partition: shard s owns [lo, hi).
      const size_t lo = n * static_cast<size_t>(s) / nshards;
      const size_t hi = n * static_cast<size_t>(s + 1) / nshards;
      for (size_t i = lo; i < hi; ++i) fn(i);
    };

    std::exception_ptr first_error;
    {
      std::unique_lock<std::mutex> lock(mu_);
      job_ = &shard;
      job_shards_ = nshards;
      shards_done_ = 0;
      error_ = nullptr;
      ++job_id_;
      cv_.notify_all();
      lock.unlock();

      // The caller is shard 0.  While it runs its shard it counts as a
      // pool thread: a nested parallel_for from inside fn must run inline
      // (taking submit_mu_ again from this thread would deadlock).
      detail::tl_in_pool_worker = true;
      try {
        shard(0);
      } catch (...) {
        std::lock_guard<std::mutex> elock(mu_);
        if (!error_) error_ = std::current_exception();
      }
      detail::tl_in_pool_worker = false;

      lock.lock();
      done_cv_.wait(lock, [&] { return shards_done_ == job_shards_ - 1; });
      job_ = nullptr;
      first_error = error_;
    }
    if (first_error) std::rethrow_exception(first_error);
  }

 private:
  void spawn(int threads) {
    if (threads < 1) threads = 1;
    num_threads_ = threads;
    stop_ = false;
    // No job can be in flight here (construction, or resize() after
    // shutdown with submit_mu_ held); restart the job counter so fresh
    // workers (seen_job = 0) don't mistake the previous pool's last job
    // id for new work and dereference the cleared job pointer.
    job_id_ = 0;
    job_ = nullptr;
    workers_.reserve(static_cast<size_t>(threads - 1));
    for (int t = 1; t < threads; ++t)
      workers_.emplace_back([this, t] { worker_loop(t); });
  }

  void shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
      cv_.notify_all();
    }
    for (auto& w : workers_) w.join();
    workers_.clear();
  }

  void worker_loop(int worker_index) {
    detail::tl_in_pool_worker = true;
    uint64_t seen_job = 0;
    for (;;) {
      const std::function<void(int)>* job = nullptr;
      int nshards = 0;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return stop_ || job_id_ != seen_job; });
        if (stop_) return;
        seen_job = job_id_;
        job = job_;
        nshards = job_shards_;
      }
      // Threads beyond the shard count sit this job out (and must not
      // touch the done counter, which only tracks participating shards).
      if (worker_index >= nshards) continue;
      try {
        (*job)(worker_index);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!error_) error_ = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++shards_done_;
        done_cv_.notify_all();
      }
    }
  }

  std::vector<std::thread> workers_;
  int num_threads_ = 1;

  std::mutex submit_mu_;  ///< serialises external parallel_for / resize

  std::mutex mu_;
  std::condition_variable cv_, done_cv_;
  const std::function<void(int)>* job_ = nullptr;
  int job_shards_ = 0;
  int shards_done_ = 0;
  uint64_t job_id_ = 0;
  std::exception_ptr error_;
  bool stop_ = false;
};

/// Reusable cycle barrier for lockstep phase execution (ISSUE 5: the
/// sharded timing simulator ticks all SMs in parallel, then runs a serial
/// commit phase — L2 replay, block dispatch — between cycles).
///
/// Epoch-based: every participant calls arrive_and_wait(fn) once per
/// cycle; the last arriver runs `fn` alone (exclusive access to shared
/// state) and then releases the epoch.  Writes made before an arrival
/// happen-before the completion function, and writes made inside the
/// completion function happen-before every participant's return — so a
/// stop flag set in `fn` is safely readable right after the barrier.
///
/// `fn` must not throw (catch internally and latch an exception_ptr); a
/// participant that abandons the barrier mid-simulation would deadlock the
/// remaining ones, which is why the simulator's shard loops route every
/// exception through a shared error slot instead of unwinding.
///
/// Waiting spins briefly (per-cycle latency matters: a simulation runs
/// millions of epochs) and then yields, so oversubscribed hosts — e.g. a
/// one-core CI runner with GPURF_THREADS=4 — degrade to scheduler-paced
/// progress instead of livelock.
class CycleBarrier {
 public:
  explicit CycleBarrier(int participants) : total_(participants) {}

  CycleBarrier(const CycleBarrier&) = delete;
  CycleBarrier& operator=(const CycleBarrier&) = delete;

  template <typename Fn>
  void arrive_and_wait(Fn&& fn) {
    const uint64_t epoch = epoch_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == total_) {
      fn();
      // Reset the arrival count *before* publishing the new epoch: a
      // participant can only re-arrive after it observed the epoch bump.
      arrived_.store(0, std::memory_order_relaxed);
      epoch_.store(epoch + 1, std::memory_order_release);
    } else {
      int spins = 0;
      while (epoch_.load(std::memory_order_acquire) == epoch) {
        if (spins < 1024)
          ++spins;  // saturate: don't overflow during a very long wait
        else
          std::this_thread::yield();
      }
    }
  }

 private:
  const int total_;
  std::atomic<int> arrived_{0};
  std::atomic<uint64_t> epoch_{0};
};

/// RAII: bind `pool` as the calling thread's current pool for the scope.
/// Engines wrap every public entry point in one of these, so the session's
/// configured width applies to all nested parallel_for calls while other
/// threads (and other Engines) stay untouched.
class ScopedPool {
 public:
  explicit ScopedPool(ThreadPool* pool) : saved_(detail::tl_current_pool) {
    detail::tl_current_pool = pool;
  }
  ~ScopedPool() { detail::tl_current_pool = saved_; }

  ScopedPool(const ScopedPool&) = delete;
  ScopedPool& operator=(const ScopedPool&) = delete;

 private:
  ThreadPool* saved_;
};

/// Convenience wrapper over the calling thread's current pool.
inline void parallel_for(size_t n, const std::function<void(size_t)>& fn) {
  ThreadPool::current().parallel_for(n, fn);
}

}  // namespace gpurf::common
