#pragma once
// Error-handling primitives shared by every gpurf module.
//
// Two tiers, following the C++ Core Guidelines split between programming
// errors and recoverable conditions:
//   * GPURF_CHECK  — recoverable / input-dependent condition; throws
//                    gpurf::Error with a formatted message (used by the
//                    assembler, verifier and host-facing configuration code).
//   * GPURF_ASSERT — internal invariant; aborts in all build types so that
//                    simulator state corruption can never be silently ignored.

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace gpurf {

/// Exception type for recoverable, user-visible failures (bad assembly text,
/// inconsistent kernel configuration, out-of-range launch parameters, ...).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* cond, const char* file,
                                     int line, const std::string& msg) {
  std::fprintf(stderr, "gpurf assertion failed: %s\n  at %s:%d\n  %s\n", cond,
               file, line, msg.c_str());
  std::abort();
}
}  // namespace detail

}  // namespace gpurf

#define GPURF_CHECK(cond, msg)                                       \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::ostringstream oss_;                                       \
      oss_ << msg;                                                   \
      throw ::gpurf::Error(oss_.str());                              \
    }                                                                \
  } while (0)

#define GPURF_ASSERT(cond, msg)                                      \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::ostringstream oss_;                                       \
      oss_ << msg;                                                   \
      ::gpurf::detail::assert_fail(#cond, __FILE__, __LINE__,        \
                                   oss_.str());                      \
    }                                                                \
  } while (0)
