#include "common/strutil.hpp"

#include <cstdarg>
#include <cstdio>

namespace gpurf {

std::string_view trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r'))
    --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
    size_t start = i;
    while (i < s.size() && s[i] != ' ' && s[i] != '\t') ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string strprintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(static_cast<size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

}  // namespace gpurf
