#pragma once
// Bit-manipulation helpers used throughout the register-file models and the
// static bitwidth analysis.

#include <bit>
#include <cstdint>

#include "common/error.hpp"

namespace gpurf {

/// Number of bits required to represent the unsigned value `v`
/// (0 needs 1 bit by convention so every value occupies at least one slice).
constexpr int bits_for_unsigned(uint64_t v) {
  return v == 0 ? 1 : 64 - std::countl_zero(v);
}

/// Number of bits required to hold every integer in the *signed* range
/// [lo, hi] in two's complement.  Requires lo <= hi.
constexpr int bits_for_signed_range(int64_t lo, int64_t hi) {
  // Negative side: value v < 0 needs bits_for_unsigned(~v) + 1 bits
  // (e.g. -1 -> 1 bit of magnitude-pattern + sign = 1 bit total pattern 1).
  // Simplest correct formulation: find smallest n with
  //   -(2^(n-1)) <= lo  and  hi <= 2^(n-1) - 1.
  for (int n = 1; n <= 64; ++n) {
    const int64_t min_v = (n == 64) ? INT64_MIN : -(int64_t(1) << (n - 1));
    const int64_t max_v =
        (n == 64) ? INT64_MAX : (int64_t(1) << (n - 1)) - 1;
    if (lo >= min_v && hi <= max_v) return n;
  }
  return 64;
}

/// Number of bits required to hold every integer in the *unsigned* range
/// [lo, hi]; requires 0 <= lo <= hi.
constexpr int bits_for_unsigned_range(uint64_t /*lo*/, uint64_t hi) {
  return bits_for_unsigned(hi);
}

/// Round a bit count up to whole 4-bit register slices.
inline int slices_for_bits(int bits) {
  GPURF_ASSERT(bits >= 1 && bits <= 32, "bit count out of range: " << bits);
  return (bits + 3) / 4;
}

/// Sign-extend the low `bits` bits of `v` to a full 32-bit signed integer.
inline int32_t sign_extend(uint32_t v, int bits) {
  GPURF_ASSERT(bits >= 1 && bits <= 32, "sign_extend bits " << bits);
  if (bits == 32) return static_cast<int32_t>(v);
  const uint32_t m = 1u << (bits - 1);
  const uint32_t x = v & ((1u << bits) - 1);
  return static_cast<int32_t>((x ^ m) - m);
}

/// Zero-extend (mask) the low `bits` bits of `v`.
inline uint32_t zero_extend(uint32_t v, int bits) {
  GPURF_ASSERT(bits >= 1 && bits <= 32, "zero_extend bits " << bits);
  if (bits == 32) return v;
  return v & ((1u << bits) - 1);
}

/// Mask with the low `n` bits set (n in [0,32]).
inline uint32_t low_mask(int n) {
  GPURF_ASSERT(n >= 0 && n <= 32, "low_mask " << n);
  return n == 32 ? 0xffffffffu : ((1u << n) - 1);
}

/// Reinterpret float <-> raw bits (no conversion).
inline uint32_t float_bits(float f) { return std::bit_cast<uint32_t>(f); }
inline float bits_float(uint32_t b) { return std::bit_cast<float>(b); }

/// Integer ceiling division for non-negative operands.
inline uint64_t ceil_div(uint64_t a, uint64_t b) {
  GPURF_ASSERT(b != 0, "ceil_div by zero");
  return (a + b - 1) / b;
}

}  // namespace gpurf
