#pragma once
// Small dynamic bitset used by dataflow analyses (live sets, phi placement).

#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace gpurf {

class DynBitset {
 public:
  DynBitset() = default;
  explicit DynBitset(size_t n) : n_(n), w_((n + 63) / 64, 0) {}

  size_t size() const { return n_; }

  void set(size_t i) {
    GPURF_ASSERT(i < n_, "bitset index " << i << " >= " << n_);
    w_[i >> 6] |= (uint64_t(1) << (i & 63));
  }
  void reset(size_t i) {
    GPURF_ASSERT(i < n_, "bitset index " << i << " >= " << n_);
    w_[i >> 6] &= ~(uint64_t(1) << (i & 63));
  }
  bool test(size_t i) const {
    GPURF_ASSERT(i < n_, "bitset index " << i << " >= " << n_);
    return (w_[i >> 6] >> (i & 63)) & 1;
  }

  void clear() { std::fill(w_.begin(), w_.end(), 0); }

  /// this |= other; returns true if this changed.
  bool merge(const DynBitset& o) {
    GPURF_ASSERT(n_ == o.n_, "bitset size mismatch");
    bool changed = false;
    for (size_t i = 0; i < w_.size(); ++i) {
      const uint64_t before = w_[i];
      w_[i] |= o.w_[i];
      changed |= (w_[i] != before);
    }
    return changed;
  }

  void and_not(const DynBitset& o) {
    GPURF_ASSERT(n_ == o.n_, "bitset size mismatch");
    for (size_t i = 0; i < w_.size(); ++i) w_[i] &= ~o.w_[i];
  }

  size_t count() const {
    size_t c = 0;
    for (uint64_t w : w_) c += static_cast<size_t>(__builtin_popcountll(w));
    return c;
  }

  bool operator==(const DynBitset& o) const {
    return n_ == o.n_ && w_ == o.w_;
  }

  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (size_t wi = 0; wi < w_.size(); ++wi) {
      uint64_t w = w_[wi];
      while (w) {
        const int b = __builtin_ctzll(w);
        fn(wi * 64 + static_cast<size_t>(b));
        w &= w - 1;
      }
    }
  }

 private:
  size_t n_ = 0;
  std::vector<uint64_t> w_;
};

}  // namespace gpurf
