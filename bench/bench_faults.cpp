// bench_faults — permanent-fault degradation curves (PR 6, ROADMAP 4a).
// For each workload the same compressed (perfect-quality) launch is
// simulated under seeded fault maps of rising density; the bench reports
// how the compression-directed redirection absorbs the faults: coverage
// (% of affected registers redirected into compression-freed slices
// rather than spilled), cycle overhead against the fault-free run, and —
// when quality scoring is on — the output-quality delta.
//
// Usage: bench_faults [--smoke] [--quality] [workload ...]
//          default workloads: DWT2D Hotspot Hybridsort SSAO
//          --smoke: sample scale, one workload, fewer densities; exits
//                   non-zero on violated invariants (cheap CI tripwire)
//          --quality: also score output quality per faulty map (three
//                   sample-scale functional runs each)
//
// Invariants checked (any violation exits non-zero):
//   * density 0 reproduces the fault-free SimStats bit for bit and
//     reports no active fault injection,
//   * coverage stays within [0, 100] %,
//   * the number of injected fault sites is non-decreasing in density.
//
// Emits BENCH_faults.json: one entry per (workload x density x seed) with
// coverage, redirection/spill counts, cycles, IPC and the overhead factor
// over the fault-free run.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "api/engine.hpp"
#include "sim/gpu.hpp"
#include "workloads/pipeline.hpp"

namespace wl = gpurf::workloads;

namespace {

struct Point {
  double density = 0.0;
  uint64_t seed = 0;
  gpurf::sim::SimResult res;
};

int usage() {
  std::fprintf(stderr,
               "usage: bench_faults [--smoke] [--quality] [workload ...]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool quality = false;
  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      smoke = true;
    else if (std::strcmp(argv[i], "--quality") == 0)
      quality = true;
    else if (argv[i][0] == '-')
      return usage();
    else
      names.push_back(argv[i]);
  }
  if (names.empty())
    names = smoke ? std::vector<std::string>{"DWT2D"}
                  : std::vector<std::string>{"DWT2D", "Hotspot",
                                             "Hybridsort", "SSAO"};
  const std::vector<double> densities =
      smoke ? std::vector<double>{0.0, 0.02, 0.08}
            : std::vector<double>{0.0, 0.005, 0.01, 0.02, 0.05};
  const int seeds_per_density = smoke ? 1 : 2;

  gpurf::Engine engine;
  const wl::Scale scale = smoke ? wl::Scale::kSample : wl::Scale::kFull;

  std::printf("bench_faults: compression-directed fault redirection "
              "(%s scale, perfect quality)\n",
              smoke ? "sample" : "full");
  std::printf("%-11s %8s %8s %10s %6s %6s %10s %9s%s\n", "Kernel", "density",
              "faults", "coverage", "redir", "spill", "cycles", "overhead",
              quality ? "   qdelta" : "");

  std::FILE* json = std::fopen("BENCH_faults.json", "w");
  if (json)
    std::fprintf(json, "{\n  \"scale\": \"%s\",\n  \"runs\": [",
                 smoke ? "sample" : "full");

  int violations = 0;
  bool first_row = true;
  for (const auto& name : names) {
    // Fault-free reference: the zero-density curve point must reproduce
    // this run bit for bit (the redirection machinery must be inert).
    gpurf::SimRequest base;
    base.mode = wl::SimMode::kCompressedPerfect;
    base.scale = scale;
    auto ref = engine.simulate(name, base);
    if (!ref.ok()) {
      std::fprintf(stderr, "bench_faults: %s: %s\n", name.c_str(),
                   ref.status().to_string().c_str());
      ++violations;
      continue;
    }

    uint32_t prev_faults = 0;
    double prev_density = -1.0;
    for (double density : densities) {
      for (int s = 0; s < seeds_per_density; ++s) {
        Point pt;
        pt.density = density;
        pt.seed = 1 + static_cast<uint64_t>(s);
        gpurf::SimRequest req = base;
        req.fault.seed = pt.seed;
        req.fault.density = density;
        req.fault.score_quality = quality && density > 0.0;
        auto res = engine.simulate(name, req);
        if (!res.ok()) {
          std::fprintf(stderr, "bench_faults: %s d=%.3f: %s\n", name.c_str(),
                       density, res.status().to_string().c_str());
          ++violations;
          continue;
        }
        pt.res = *res;
        const auto& f = pt.res.fault;

        bool bad = false;
        if (density <= 0.0 &&
            !(pt.res.stats == ref->stats && !f.active)) {
          bad = true;  // zero-fault path must be bit-identical + inert
        }
        if (f.coverage_pct < 0.0 || f.coverage_pct > 100.0) bad = true;
        if (density > prev_density) {
          // New density step: sites are a fixed geometry, so the injected
          // count must not shrink as density rises.
          if (f.faults_total < prev_faults) bad = true;
          prev_faults = f.faults_total;
          prev_density = density;
        }
        if (bad) ++violations;

        const double overhead =
            ref->stats.cycles
                ? double(pt.res.stats.cycles) / double(ref->stats.cycles)
                : 0.0;
        std::printf("%-11s %8.3f %8u %9.1f%% %6u %6u %10llu %8.3fx",
                    name.c_str(), density, f.faults_total, f.coverage_pct,
                    f.registers_redirected, f.registers_spilled,
                    static_cast<unsigned long long>(pt.res.stats.cycles),
                    overhead);
        if (quality && f.quality_scored)
          std::printf("   %+.4f", f.quality_delta);
        std::printf("%s\n", bad ? "   <-- INVARIANT VIOLATED" : "");

        if (json) {
          std::fprintf(
              json,
              "%s\n    {\"kernel\": \"%s\", \"density\": %.4f, "
              "\"seed\": %llu, \"faults_total\": %u, "
              "\"faults_in_footprint\": %u, \"coverage_pct\": %.2f, "
              "\"registers_redirected\": %u, \"registers_spilled\": %u, "
              "\"cycles\": %llu, \"ipc\": %.4f, \"overhead\": %.4f, "
              "\"quality_scored\": %s, \"quality_delta\": %.6f, "
              "\"ok\": %s}",
              first_row ? "" : ",", name.c_str(), density,
              static_cast<unsigned long long>(pt.seed), f.faults_total,
              f.faults_in_footprint, f.coverage_pct, f.registers_redirected,
              f.registers_spilled,
              static_cast<unsigned long long>(pt.res.stats.cycles),
              pt.res.stats.ipc(), overhead,
              f.quality_scored ? "true" : "false", f.quality_delta,
              bad ? "false" : "true");
          first_row = false;
        }
      }
    }
  }
  if (json) {
    std::fprintf(json, "\n  ]\n}\n");
    std::fclose(json);
  }

  if (violations) {
    std::printf("\n%d invariant violation(s)\n", violations);
    return 1;
  }
  return 0;
}
