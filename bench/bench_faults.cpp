// bench_faults — permanent-fault degradation curves (PR 6, ROADMAP 4a).
// For each workload the same compressed (perfect-quality) launch is
// simulated under seeded fault maps of rising density; the bench reports
// how the compression-directed redirection absorbs the faults: coverage
// (% of affected registers redirected into compression-freed slices
// rather than spilled), cycle overhead against the fault-free run, and —
// when quality scoring is on — the output-quality delta.
//
// Each density is swept over `maps_per_density` seeded fault maps and the
// emitted row aggregates mean/min/max overhead and coverage across them,
// so the degradation curves are not one-draw noise (PR 7 fix; previously
// every row was a single seed).
//
// Usage: bench_faults [--smoke] [--quality] [workload ...]
//          default workloads: DWT2D Hotspot Hybridsort SSAO
//          --smoke: sample scale, one workload, fewer densities and maps;
//                   exits non-zero on violated invariants (CI tripwire)
//          --quality: also score output quality per faulty map (three
//                   sample-scale functional runs each)
//
// Invariants checked (any violation exits non-zero):
//   * density 0 reproduces the fault-free SimStats bit for bit and
//     reports no active fault injection,
//   * coverage stays within [0, 100] %,
//   * per seed, the number of injected fault sites is non-decreasing in
//     density (the site stream is a fixed geometry).
//
// Emits BENCH_faults.json: one entry per (workload x density) with the
// seed list and mean/min/max coverage and overhead plus mean counts.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "api/engine.hpp"
#include "sim/gpu.hpp"
#include "workloads/pipeline.hpp"

namespace wl = gpurf::workloads;

namespace {

/// Running mean/min/max over the per-seed draws of one density row.
struct Agg {
  double sum = 0.0, lo = 0.0, hi = 0.0;
  int n = 0;
  void add(double v) {
    if (n == 0) { lo = hi = v; } else { lo = std::min(lo, v); hi = std::max(hi, v); }
    sum += v;
    ++n;
  }
  double mean() const { return n ? sum / n : 0.0; }
};

int usage() {
  std::fprintf(stderr,
               "usage: bench_faults [--smoke] [--quality] [--out PATH] [workload ...]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool quality = false;
  const char* out_path = "BENCH_faults.json";
  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      smoke = true;
    else if (std::strcmp(argv[i], "--quality") == 0)
      quality = true;
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
    else if (argv[i][0] == '-')
      return usage();
    else
      names.push_back(argv[i]);
  }
  if (names.empty())
    names = smoke ? std::vector<std::string>{"DWT2D"}
                  : std::vector<std::string>{"DWT2D", "Hotspot",
                                             "Hybridsort", "SSAO"};
  const std::vector<double> densities =
      smoke ? std::vector<double>{0.0, 0.02, 0.08}
            : std::vector<double>{0.0, 0.005, 0.01, 0.02, 0.05};
  const int maps_per_density = smoke ? 2 : 4;

  gpurf::Engine engine;
  const wl::Scale scale = smoke ? wl::Scale::kSample : wl::Scale::kFull;

  std::printf("bench_faults: compression-directed fault redirection "
              "(%s scale, perfect quality, %d map(s)/density)\n",
              smoke ? "sample" : "full", maps_per_density);
  std::printf("%-11s %8s %8s %22s %6s %6s %24s%s\n", "Kernel", "density",
              "faults", "coverage mean[min,max]", "redir", "spill",
              "overhead mean[min,max]", quality ? "   qdelta" : "");

  std::FILE* json = std::fopen(out_path, "w");
  if (json)
    std::fprintf(json,
                 "{\n  \"scale\": \"%s\",\n  \"maps_per_density\": %d,\n"
                 "  \"runs\": [",
                 smoke ? "sample" : "full", maps_per_density);

  int violations = 0;
  bool first_row = true;
  for (const auto& name : names) {
    // Fault-free reference: the zero-density curve point must reproduce
    // this run bit for bit (the redirection machinery must be inert).
    gpurf::SimRequest base;
    base.mode = wl::SimMode::kCompressedPerfect;
    base.scale = scale;
    auto ref = engine.simulate(name, base);
    if (!ref.ok()) {
      std::fprintf(stderr, "bench_faults: %s: %s\n", name.c_str(),
                   ref.status().to_string().c_str());
      ++violations;
      continue;
    }

    // Per-seed fault-count watermarks: each seed is an independent site
    // stream, so monotonicity in density holds seed by seed.
    std::vector<uint32_t> prev_faults(maps_per_density, 0);
    for (double density : densities) {
      // A zero-density map is empty whatever the seed — one draw suffices.
      const int nmaps = density <= 0.0 ? 1 : maps_per_density;
      Agg cover, overhead, qdelta, faults, redir, spill, cycles, ipc;
      std::vector<uint64_t> seeds;
      bool row_bad = false;
      for (int s = 0; s < nmaps; ++s) {
        const uint64_t seed = 1 + static_cast<uint64_t>(s);
        gpurf::SimRequest req = base;
        req.fault.seed = seed;
        req.fault.density = density;
        req.fault.score_quality = quality && density > 0.0;
        auto res = engine.simulate(name, req);
        if (!res.ok()) {
          std::fprintf(stderr, "bench_faults: %s d=%.3f seed=%llu: %s\n",
                       name.c_str(), density,
                       static_cast<unsigned long long>(seed),
                       res.status().to_string().c_str());
          ++violations;
          row_bad = true;
          continue;
        }
        const auto& f = res->fault;

        bool bad = false;
        if (density <= 0.0 && !(res->stats == ref->stats && !f.active)) {
          bad = true;  // zero-fault path must be bit-identical + inert
        }
        if (f.coverage_pct < 0.0 || f.coverage_pct > 100.0) bad = true;
        if (f.faults_total < prev_faults[s]) bad = true;
        prev_faults[s] = f.faults_total;
        if (bad) {
          ++violations;
          row_bad = true;
        }

        seeds.push_back(seed);
        faults.add(f.faults_total);
        cover.add(f.coverage_pct);
        redir.add(f.registers_redirected);
        spill.add(f.registers_spilled);
        cycles.add(double(res->stats.cycles));
        ipc.add(res->stats.ipc());
        overhead.add(ref->stats.cycles ? double(res->stats.cycles) /
                                             double(ref->stats.cycles)
                                       : 0.0);
        if (quality && f.quality_scored) qdelta.add(f.quality_delta);
      }
      if (seeds.empty()) continue;

      std::printf("%-11s %8.3f %8.1f %7.1f%% [%5.1f,%5.1f] %6.1f %6.1f "
                  "%8.3fx [%.3f,%.3f]",
                  name.c_str(), density, faults.mean(), cover.mean(),
                  cover.lo, cover.hi, redir.mean(), spill.mean(),
                  overhead.mean(), overhead.lo, overhead.hi);
      if (quality && qdelta.n) std::printf("   %+.4f", qdelta.mean());
      std::printf("%s\n", row_bad ? "   <-- INVARIANT VIOLATED" : "");

      if (json) {
        std::fprintf(
            json,
            "%s\n    {\"kernel\": \"%s\", \"density\": %.4f, \"seeds\": [",
            first_row ? "" : ",", name.c_str(), density);
        for (size_t i = 0; i < seeds.size(); ++i)
          std::fprintf(json, "%s%llu", i ? ", " : "",
                       static_cast<unsigned long long>(seeds[i]));
        std::fprintf(
            json,
            "], \"faults_total_mean\": %.1f, "
            "\"coverage_pct_mean\": %.2f, \"coverage_pct_min\": %.2f, "
            "\"coverage_pct_max\": %.2f, "
            "\"registers_redirected_mean\": %.1f, "
            "\"registers_spilled_mean\": %.1f, "
            "\"cycles_mean\": %.1f, \"ipc_mean\": %.4f, "
            "\"overhead_mean\": %.4f, \"overhead_min\": %.4f, "
            "\"overhead_max\": %.4f, "
            "\"quality_scored\": %s, \"quality_delta_mean\": %.6f, "
            "\"ok\": %s}",
            faults.mean(), cover.mean(), cover.lo, cover.hi, redir.mean(),
            spill.mean(), cycles.mean(), ipc.mean(), overhead.mean(),
            overhead.lo, overhead.hi, qdelta.n ? "true" : "false",
            qdelta.mean(), row_bad ? "false" : "true");
        first_row = false;
      }
    }
  }
  if (json) {
    std::fprintf(json, "\n  ]\n}\n");
    std::fclose(json);
  }

  if (violations) {
    std::printf("\n%d invariant violation(s)\n", violations);
    return 1;
  }
  return 0;
}
