// bench_analysis — cost and payoff of the instruction-granular static
// analysis (PR 9).
//
// Per Table-4 workload:
//   * analysis time — compute_dataflow() over the prebuilt CFG (best of
//     GPURF_BENCH_REPS, default 3);
//   * lint facts — dead-write count, never-read registers, undefined reads
//     (always zero on the shipped workloads; the lint gate pins that);
//   * pressure — static liveness bound vs. baseline colouring vs. the
//     live-interval colouring (the delta is what AllocOptions::
//     live_intervals buys before any slice compression);
//   * elision — functional-replay time with dead-write elision off vs. on,
//     outputs verified bit-identical first.
//
// The shipped kernels are hand-tight (few dead writes), so a synthetic
// family of dead-write-heavy kernels is benched too — rotating writes into
// never-read scratch registers inside a hot loop — where elision must show
// a real speedup.  BENCH_analysis.json records everything.
//
// PR 10 adds the static memory pass: per Table-4 workload the bench
// reports memory-proof coverage (sites proven in bounds / total memory
// sites, the disjointness verdicts and whether the workload carries an
// assume_disjoint waiver) plus bounds-check-elision replay throughput
// (checks on vs. proven checks elided, outputs verified bit-identical
// first).  A "memory" summary object lands in BENCH_analysis.json.
//
// Usage: bench_analysis [--smoke] [--out PATH] [workload ...]
//   --smoke: CI tripwire — exit nonzero if any elision run (dead-write or
//            bounds-check) is not bit-identical, any workload has
//            undefined reads, the live-interval pressure exceeds baseline,
//            the synthetic kernels fail to speed up under elision
//            (generous margin so timer noise can't flake the build), the
//            fleet-wide memory-proof coverage drops below 85%, or any
//            workload loses block-parallel eligibility (proofs + waivers
//            must keep every bundled workload parallel-replayable).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "alloc/slice_alloc.hpp"
#include "analysis/cfg.hpp"
#include "analysis/dataflow.hpp"
#include "analysis/memory_access.hpp"
#include "common/thread_pool.hpp"
#include "exec/interp.hpp"
#include "ir/parser.hpp"
#include "ir/verifier.hpp"
#include "workloads/workload.hpp"

namespace wl = gpurf::workloads;
namespace analysis = gpurf::analysis;
namespace alloc = gpurf::alloc;
namespace exec = gpurf::exec;
namespace ir = gpurf::ir;

namespace {

double now_secs() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ReplayResult {
  double secs = 0.0;
  std::vector<float> out;
};

ReplayResult run_workload(const wl::Workload& w, bool elide_dead,
                          bool elide_bounds, int reps) {
  ReplayResult r;
  r.secs = 1e30;
  for (int i = 0; i < reps; ++i) {
    auto inst = w.make_instance(wl::Scale::kSample, 0);
    wl::RunOptions o;
    o.use_soa = true;
    o.block_parallel = false;
    o.elide_dead_writes = elide_dead;
    o.elide_bounds_checks = elide_bounds;
    const double t0 = now_secs();
    r.out = w.run(inst, nullptr, nullptr, o);
    r.secs = std::min(r.secs, now_secs() - t0);
  }
  return r;
}

bool bits_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

/// Dead-write-heavy synthetic: a hot loop whose body writes `width`
/// scratch registers that are never read (every such write is statically
/// dead) around one live accumulator chain.  Elision skips the scratch
/// instructions' whole data path, so replay time must drop.
std::string make_dead_heavy(int width, int trip) {
  std::string s = ".kernel deadheavy" + std::to_string(width) + "\n";
  s += ".param s32 out_base\n.reg s32 %gid\n.reg s32 %i\n.reg s32 %acc\n";
  for (int d = 0; d < width; ++d)
    s += ".reg s32 %scratch" + std::to_string(d) + "\n";
  s += ".reg pred %p\nentry:\n";
  s += "  mov.s32 %gid, %ctaid.x\n";
  s += "  mad.s32 %gid, %gid, 32, %tid.x\n";
  s += "  mov.s32 %acc, 0\n  mov.s32 %i, 0\nhead:\n";
  s += "  setp.ge.s32 %p, %i, " + std::to_string(trip) + "\n";
  s += "  @%p bra done\nbody:\n";
  for (int d = 0; d < width; ++d) {
    const std::string r = "%scratch" + std::to_string(d);
    s += "  mad.s32 " + r + ", %i, " + std::to_string(3 + d) + ", %gid\n";
  }
  s += "  add.s32 %acc, %acc, %i\n";
  s += "  add.s32 %i, %i, 1\n  bra head\ndone:\n";
  s += "  add.s32 %i, %gid, $out_base\n";
  s += "  st.global.s32 [%i], %acc\n  ret\n";
  return s;
}

struct RawReplay {
  double secs = 0.0;
  std::vector<uint32_t> words;
  uint64_t thread_insts = 0;
};

RawReplay run_raw(const ir::Kernel& k, bool elide, int reps) {
  RawReplay r;
  r.secs = 1e30;
  const ir::LaunchConfig launch{4, 1, 32, 1};
  for (int i = 0; i < reps; ++i) {
    exec::GlobalMemory gmem;
    const uint32_t out = gmem.alloc(4 * 32 + 64);
    exec::ExecContext ctx;
    ctx.kernel = &k;
    ctx.launch = launch;
    ctx.gmem = &gmem;
    ctx.params = {out};
    ctx.use_soa = true;
    ctx.block_parallel = false;
    ctx.elide_dead_writes = elide;
    const double t0 = now_secs();
    r.thread_insts = exec::run_functional(ctx);
    r.secs = std::min(r.secs, now_secs() - t0);
    const auto view = gmem.view(out, 4 * 32);
    r.words = {view.begin(), view.end()};
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* out_path = "BENCH_analysis.json";
  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke")
      smoke = true;
    else if (std::string(argv[i]) == "--out" && i + 1 < argc)
      out_path = argv[++i];
    else
      names.emplace_back(argv[i]);
  }
  int reps = 3;
  if (const char* env = std::getenv("GPURF_BENCH_REPS")) {
    const int n = std::atoi(env);
    if (n >= 1) reps = n;
  }
  gpurf::common::ThreadPool::instance().resize(1);

  std::printf("bench_analysis: static dataflow cost + payoff (best of %d)\n",
              reps);
  std::printf("%-12s %9s %5s %5s  %6s %6s %6s  %9s %9s %7s  %s\n", "Kernel",
              "analyze", "dead", "nread", "static", "alloc", "intvl",
              "off(ms)", "on(ms)", "speedup", "identical");

  // Memory-proof coverage accumulators (PR 10), summarised after the
  // per-workload table and gated in --smoke.
  uint64_t mem_sites_total = 0, mem_sites_proven = 0;
  int mem_workloads = 0, mem_fully_proven = 0, mem_waived = 0;
  int mem_parallel_ok = 0, mem_shard_ok = 0;

  std::FILE* json = std::fopen(out_path, "w");
  if (json) std::fprintf(json, "{\n  \"workloads\": [");

  int failures = 0;
  bool first_row = true;
  auto emit_row = [&](const std::string& name, double analyze_secs,
                      const analysis::KernelReport& rep, double off_secs,
                      double on_secs, bool identical, bool synthetic,
                      const std::string& extra_json = {}) {
    const double speedup = on_secs > 0 ? off_secs / on_secs : 0.0;
    std::printf("%-12s %7.1fus %5zu %5zu  %6u %6u %6u  %9.3f %9.3f %6.2fx  %s\n",
                name.c_str(), analyze_secs * 1e6, rep.dead_writes.size(),
                rep.never_read.size(), rep.static_pressure, rep.alloc_pressure,
                rep.live_interval_pressure, off_secs * 1e3, on_secs * 1e3,
                speedup, identical ? "yes" : "NO <-- bug");
    if (json) {
      std::fprintf(
          json,
          "%s\n    {\"name\": \"%s\", \"synthetic\": %s, "
          "\"analysis_us\": %.2f, \"dead_writes\": %zu, \"never_read\": %zu, "
          "\"undefined_reads\": %zu, \"static_pressure\": %u, "
          "\"alloc_pressure\": %u, \"live_interval_pressure\": %u, "
          "\"replay_off_ms\": %.4f, \"replay_on_ms\": %.4f, "
          "\"elide_speedup\": %.3f, \"identical\": %s%s}",
          first_row ? "" : ",", name.c_str(), synthetic ? "true" : "false",
          analyze_secs * 1e6, rep.dead_writes.size(), rep.never_read.size(),
          rep.undefined_reads.size(), rep.static_pressure, rep.alloc_pressure,
          rep.live_interval_pressure, off_secs * 1e3, on_secs * 1e3, speedup,
          identical ? "true" : "false", extra_json.c_str());
      first_row = false;
    }
    if (!identical) ++failures;
    if (!rep.undefined_reads.empty()) ++failures;
    if (rep.live_interval_pressure > rep.alloc_pressure) ++failures;
  };

  for (const auto& w : wl::make_all_workloads()) {
    if (!names.empty()) {
      bool wanted = false;
      for (const auto& n : names) wanted |= (n == w->spec().name);
      if (!wanted) continue;
    }
    const ir::Kernel& k = w->kernel();
    const auto cfg = analysis::build_cfg(k);
    double analyze_secs = 1e30;
    analysis::Dataflow df;
    for (int i = 0; i < reps; ++i) {
      const double t0 = now_secs();
      df = analysis::compute_dataflow(k, cfg);
      analyze_secs = std::min(analyze_secs, now_secs() - t0);
    }
    auto rep = analysis::build_kernel_report(k, cfg, df);
    rep.alloc_pressure = alloc::baseline_pressure(k);
    rep.live_interval_pressure = alloc::live_interval_pressure(k);

    const auto off = run_workload(*w, /*dead=*/false, /*bounds=*/false, reps);
    const auto on = run_workload(*w, /*dead=*/true, /*bounds=*/false, reps);

    // Static memory pass (PR 10): solve cost, proof coverage and the
    // disjointness verdicts for the sample instance, then bounds-check
    // elision throughput (dead-write elision held on in both runs so the
    // delta isolates the checks).
    auto inst = w->make_instance(wl::Scale::kSample, 0);
    double mem_secs = 1e30;
    for (int i = 0; i < reps; ++i) {
      analysis::MemoryAccessOptions mo;
      mo.param_values = &inst.params;
      const double t0 = now_secs();
      auto ma = analysis::analyze_memory_accesses(k, inst.launch, mo);
      mem_secs = std::min(mem_secs, now_secs() - t0);
    }
    const auto proofs = w->mem_proofs(inst, /*footprints=*/true);
    const uint32_t sites = static_cast<uint32_t>(proofs->mem.accesses.size());
    const bool waived = w->spec().assume_disjoint;
    mem_sites_total += sites;
    mem_sites_proven += proofs->proven_sites;
    ++mem_workloads;
    if (proofs->proven_sites == sites) ++mem_fully_proven;
    if (waived) ++mem_waived;
    if (proofs->parallel_ok) ++mem_parallel_ok;
    if (proofs->shard_ok) ++mem_shard_ok;
    if (smoke && !proofs->parallel_ok) ++failures;

    const auto boff = run_workload(*w, /*dead=*/true, /*bounds=*/false, reps);
    const auto bon = run_workload(*w, /*dead=*/true, /*bounds=*/true, reps);
    const bool bident = bits_equal(boff.out, bon.out);
    if (!bident) ++failures;
    const double bspeed = bon.secs > 0 ? boff.secs / bon.secs : 0.0;

    char extra[512];
    std::snprintf(
        extra, sizeof(extra),
        ", \"mem_analysis_us\": %.2f, \"mem_sites\": %u, "
        "\"mem_proven\": %u, \"stores_disjoint\": %s, \"loads_local\": %s, "
        "\"disjoint_waived\": %s, \"parallel_ok\": %s, \"shard_ok\": %s, "
        "\"bounds_off_ms\": %.4f, \"bounds_on_ms\": %.4f, "
        "\"bounds_elide_speedup\": %.3f, \"bounds_identical\": %s",
        mem_secs * 1e6, sites, proofs->proven_sites,
        proofs->mem.stores_disjoint ? "true" : "false",
        proofs->mem.loads_local ? "true" : "false", waived ? "true" : "false",
        proofs->parallel_ok ? "true" : "false",
        proofs->shard_ok ? "true" : "false", boff.secs * 1e3, bon.secs * 1e3,
        bspeed, bident ? "true" : "false");

    emit_row(w->spec().name, analyze_secs, rep, off.secs, on.secs,
             bits_equal(off.out, on.out), /*synthetic=*/false, extra);
    std::printf("%-12s   mem: %u/%u proven (%.1fus)  %s%s%s  "
                "checks %7.3f  elided %7.3f  %5.2fx  %s\n",
                "", proofs->proven_sites, sites, mem_secs * 1e6,
                proofs->mem.stores_disjoint ? "stores-disjoint " : "",
                proofs->mem.loads_local ? "loads-local " : "",
                waived ? "[waived]" : "", boff.secs * 1e3, bon.secs * 1e3,
                bspeed, bident ? "yes" : "NO <-- bug");
  }

  // Fleet-wide proof coverage: the smoke gate holds the floor at 85% so a
  // solver regression (or a new workload with unproven accesses and no
  // waiver) fails CI instead of silently serialising replays.
  const double coverage =
      mem_sites_total > 0
          ? static_cast<double>(mem_sites_proven) /
                static_cast<double>(mem_sites_total)
          : 1.0;
  if (mem_workloads > 0) {
    std::printf(
        "\nmemory proofs: %llu/%llu sites proven (%.1f%%), "
        "%d/%d workloads fully proven, %d waived, "
        "%d parallel-ok, %d shard-ok\n",
        static_cast<unsigned long long>(mem_sites_proven),
        static_cast<unsigned long long>(mem_sites_total), coverage * 100.0,
        mem_fully_proven, mem_workloads, mem_waived, mem_parallel_ok,
        mem_shard_ok);
    if (smoke && coverage < 0.85) {
      std::printf("memory-proof coverage below the 85%% floor\n");
      ++failures;
    }
  }

  // Synthetic dead-write-heavy family: here elision has real work to skip,
  // so the smoke gate can demand an actual speedup.
  if (names.empty()) {
    for (const int width : {4, 8, 16}) {
      ir::Kernel k = ir::parse_kernel(make_dead_heavy(width, 4096));
      ir::verify(k);
      const auto cfg = analysis::build_cfg(k);
      double analyze_secs = 1e30;
      analysis::Dataflow df;
      for (int i = 0; i < reps; ++i) {
        const double t0 = now_secs();
        df = analysis::compute_dataflow(k, cfg);
        analyze_secs = std::min(analyze_secs, now_secs() - t0);
      }
      auto rep = analysis::build_kernel_report(k, cfg, df);
      rep.alloc_pressure = alloc::baseline_pressure(k);
      rep.live_interval_pressure = alloc::live_interval_pressure(k);

      const auto off = run_raw(k, /*elide=*/false, reps);
      const auto on = run_raw(k, /*elide=*/true, reps);
      const bool identical =
          off.words == on.words && off.thread_insts == on.thread_insts;
      emit_row(k.name, analyze_secs, rep, off.secs, on.secs, identical,
               /*synthetic=*/true);
      // Every loop iteration is `width` dead scratch writes around 3 live
      // instructions; even with timer noise elision must win clearly.
      if (smoke && on.secs > 0 && off.secs / on.secs < 1.05) ++failures;
    }
  }

  if (json) {
    std::fprintf(json,
                 "\n  ],\n  \"memory\": {\"sites\": %llu, \"proven\": %llu, "
                 "\"coverage\": %.4f, \"workloads\": %d, "
                 "\"fully_proven\": %d, \"waived\": %d, "
                 "\"parallel_ok\": %d, \"shard_ok\": %d}\n}\n",
                 static_cast<unsigned long long>(mem_sites_total),
                 static_cast<unsigned long long>(mem_sites_proven), coverage,
                 mem_workloads, mem_fully_proven, mem_waived, mem_parallel_ok,
                 mem_shard_ok);
    std::fclose(json);
  }
  if (failures) {
    std::printf("\n%d check(s) failed\n", failures);
    return 1;
  }
  return 0;
}
