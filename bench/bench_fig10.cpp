// bench_fig10 — regenerates Figure 10: active thread blocks per SM
// (occupancy) for the original register file and the proposed indirection-
// table organisation at perfect and high output quality.  Also reports the
// limiting resource, reproducing the IMGVF shared-memory cap discussion
// (§6.1).  Pipelines warm through the Engine's async queue; the occupancy
// math uses the Engine's configured GpuConfig.

#include <cstdio>
#include <future>
#include <vector>

#include "api/engine.hpp"
#include "sim/occupancy.hpp"

namespace wl = gpurf::workloads;
namespace sim = gpurf::sim;

namespace {
const char* limiter_name(sim::Occupancy::Limiter l) {
  switch (l) {
    case sim::Occupancy::Limiter::kRegisters: return "regs";
    case sim::Occupancy::Limiter::kSharedMem: return "smem";
    case sim::Occupancy::Limiter::kWarps: return "warps";
    case sim::Occupancy::Limiter::kBlocks: return "blocks";
    default: return "-";
  }
}
}  // namespace

int main() {
  gpurf::Engine engine;
  const sim::GpuConfig& gpu = engine.options().gpu;
  std::printf("Figure 10: active thread blocks / SM\n");
  std::printf("%-11s %18s %24s %24s\n", "Kernel", "Original",
              "IndirTable(perfect)", "IndirTable(high)");
  const auto names = engine.workload_names();
  // Tune all workloads concurrently before the (cheap) occupancy prints.
  std::vector<std::future<gpurf::StatusOr<wl::PipelineResult>>> warm;
  for (const auto& n : names) warm.push_back(engine.submit_pipeline(n));
  for (auto& f : warm) f.wait();

  for (const auto& n : names) {
    const wl::Workload& w = **engine.workload(n);
    auto pr = engine.pipeline(w);
    if (!pr.ok()) {
      std::fprintf(stderr, "%s\n", pr.status().to_string().c_str());
      return 1;
    }
    const auto& p = (*pr)->pressure;
    const uint32_t wpb = w.spec().warps_per_block;
    const uint32_t smem = w.kernel().shared_bytes;
    const auto o0 = compute_occupancy(gpu, p.original, wpb, smem);
    const auto o1 = compute_occupancy(gpu, p.both_perfect, wpb, smem);
    const auto o2 = compute_occupancy(gpu, p.both_high, wpb, smem);
    std::printf("%-11s %10u (%5s) %16u (%5s) %16u (%5s)\n", n.c_str(),
                o0.blocks_per_sm, limiter_name(o0.limiter), o1.blocks_per_sm,
                limiter_name(o1.limiter), o2.blocks_per_sm,
                limiter_name(o2.limiter));
  }
  std::printf("\n(limiting resource in parentheses)\n");
  return 0;
}
