// bench_fig10 — regenerates Figure 10: active thread blocks per SM
// (occupancy) for the original register file and the proposed indirection-
// table organisation at perfect and high output quality.  Also reports the
// limiting resource, reproducing the IMGVF shared-memory cap discussion
// (§6.1).

#include <cstdio>

#include "common/thread_pool.hpp"
#include "sim/occupancy.hpp"
#include "workloads/pipeline.hpp"
#include "workloads/workload.hpp"

namespace wl = gpurf::workloads;
namespace sim = gpurf::sim;

namespace {
const char* limiter_name(sim::Occupancy::Limiter l) {
  switch (l) {
    case sim::Occupancy::Limiter::kRegisters: return "regs";
    case sim::Occupancy::Limiter::kSharedMem: return "smem";
    case sim::Occupancy::Limiter::kWarps: return "warps";
    case sim::Occupancy::Limiter::kBlocks: return "blocks";
    default: return "-";
  }
}
}  // namespace

int main() {
  const sim::GpuConfig gpu = sim::GpuConfig::fermi_gtx480();
  std::printf("Figure 10: active thread blocks / SM\n");
  std::printf("%-11s %18s %24s %24s\n", "Kernel", "Original",
              "IndirTable(perfect)", "IndirTable(high)");
  const auto workloads = wl::make_all_workloads();
  // Tune all workloads concurrently before the (cheap) occupancy prints.
  gpurf::common::parallel_for(workloads.size(), [&](size_t i) {
    wl::run_pipeline(*workloads[i]);
  });
  for (const auto& w : workloads) {
    const auto& pr = wl::run_pipeline(*w);
    const uint32_t wpb = w->spec().warps_per_block;
    const uint32_t smem = w->kernel().shared_bytes;
    const auto o0 = compute_occupancy(gpu, pr.pressure.original, wpb, smem);
    const auto o1 = compute_occupancy(gpu, pr.pressure.both_perfect, wpb, smem);
    const auto o2 = compute_occupancy(gpu, pr.pressure.both_high, wpb, smem);
    std::printf("%-11s %10u (%5s) %16u (%5s) %16u (%5s)\n",
                w->spec().name.c_str(), o0.blocks_per_sm,
                limiter_name(o0.limiter), o1.blocks_per_sm,
                limiter_name(o1.limiter), o2.blocks_per_sm,
                limiter_name(o2.limiter));
  }
  std::printf("\n(limiting resource in parentheses)\n");
  return 0;
}
