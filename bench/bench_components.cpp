// bench_components — google-benchmark microbenchmarks of the §3.2 datapath
// models (Value Extractor / Converter / Truncator, indirection table,
// compressed read/write path) plus the Table-3 format converters.  These
// measure the simulator's model cost and double as smoke tests of the
// throughput parameters (§3.2.8: 16 table accesses/cycle, 6 warp
// conversions/cycle, single-cycle extraction).

#include <benchmark/benchmark.h>

#include "alloc/slice_alloc.hpp"
#include "common/rng.hpp"
#include "fp/format.hpp"
#include "rf/compressed_rf.hpp"
#include "rf/indirection_table.hpp"
#include "rf/value_converter.hpp"
#include "rf/value_extractor.hpp"
#include "rf/value_truncator.hpp"
#include "sim/cache.hpp"

namespace rf = gpurf::rf;
namespace fp = gpurf::fp;

static void BM_FormatQuantize(benchmark::State& state) {
  const auto fmt = fp::format_for_bits(static_cast<int>(state.range(0)));
  gpurf::Pcg32 rng(1);
  float v = rng.next_float(-100.f, 100.f);
  for (auto _ : state) {
    v = fp::quantize(v + 1.0f, fmt);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_FormatQuantize)->Arg(28)->Arg(16)->Arg(8);

static void BM_TveExtract(benchmark::State& state) {
  rf::ExtractSpec spec;
  spec.mask = 0b01101100;
  spec.first_slice = 0;
  spec.data_slices = 4;
  spec.is_signed = true;
  uint32_t x = 0x12345678;
  for (auto _ : state) {
    x = rf::tve_extract(x + 1, spec);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_TveExtract);

static void BM_WarpExtract(benchmark::State& state) {
  rf::ExtractSpec spec;
  spec.mask = 0x3c;
  spec.first_slice = 0;
  spec.data_slices = 4;
  std::array<uint32_t, 32> in{};
  for (int i = 0; i < 32; ++i) in[i] = 0x01010101u * i;
  for (auto _ : state) {
    auto out = rf::warp_extract_piece(in, spec);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_WarpExtract);

static void BM_WarpConvert(benchmark::State& state) {
  const auto fmt = fp::format_for_bits(16);
  std::array<uint32_t, 32> in{};
  for (int i = 0; i < 32; ++i)
    in[i] = fp::encode(0.5f + 0.01f * i, fmt);
  for (auto _ : state) {
    auto out = rf::warp_convert(in, fmt);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_WarpConvert);

static void BM_TvtTruncate(benchmark::State& state) {
  rf::TruncateSpec spec;
  spec.mask0 = 0x0f;
  spec.mask1 = 0x30;
  spec.data_slices = 6;
  spec.is_float = true;
  spec.float_fmt = fp::format_for_bits(24);
  float v = 1.0f;
  for (auto _ : state) {
    v += 0.25f;
    auto out = rf::tvt_truncate(gpurf::float_bits(v), spec);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_TvtTruncate);

static void BM_IndirectionLookup(benchmark::State& state) {
  std::vector<gpurf::alloc::IndirectionEntry> table(64);
  for (uint32_t i = 0; i < 64; ++i) {
    table[i].valid = true;
    table[i].r0 = {i, 0xff};
    table[i].slices = 8;
  }
  rf::IndirectionTable it;
  it.load(table);
  uint32_t r = 0;
  for (auto _ : state) {
    r = (r + 1) % 64;
    benchmark::DoNotOptimize(it.lookup(r));
  }
}
BENCHMARK(BM_IndirectionLookup);

static void BM_CompressedReadWrite(benchmark::State& state) {
  // A packed allocation: one 4-slice float + one 3-slice int sharing a
  // physical register, plus a split operand.
  std::vector<gpurf::alloc::IndirectionEntry> table(3);
  table[0] = {true, {0, 0x0f}, {}, false, 4, false, true, 16};
  table[1] = {true, {0, 0x70}, {}, false, 3, true, false, 32};
  table[2] = {true, {0, 0x80}, {1, 0x07}, true, 4, false, false, 32};
  rf::CompressedRegisterFile crf(table, 2, 1);

  rf::WarpRegister vals{};
  for (int l = 0; l < 32; ++l) vals[l] = gpurf::float_bits(0.5f + l);
  for (auto _ : state) {
    crf.write_operand(0, 0, vals);
    benchmark::DoNotOptimize(crf.read_operand(0, 0));
  }
}
BENCHMARK(BM_CompressedReadWrite);

static void BM_CacheProbe(benchmark::State& state) {
  gpurf::sim::Cache cache(gpurf::sim::CacheGeom{16 * 1024, 128, 4});
  gpurf::Pcg32 rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(rng.next_below(4096)));
  }
}
BENCHMARK(BM_CacheProbe);

BENCHMARK_MAIN();
