// bench_serve — fleet-serving load harness (ISSUE 8 tentpole).  Hosts a
// sharded EngineFleet behind a Server (TCP on an ephemeral loopback port
// plus an AF_UNIX socket) inside this process, then drives it with an
// open-loop load generator: arrivals are pre-scheduled at a fixed rate and
// latency is measured completion-minus-*scheduled*-arrival, so queueing
// delay inside a saturated daemon is charged to the daemon, not hidden by
// a slow closed-loop client (no coordinated omission).
//
// Phases:
//   1. preflight  — correctness gates: TCP and AF_UNIX serve bit-identical
//                   results (api::deep_equal, chunked-stream path
//                   included), watch reaches the same terminal state as
//                   wait, a tightly-quota'd second Server rejects with
//                   RESOURCE_EXHAUSTED + retry_after_ms, and
//                   {"op":"histograms"} parses with all four stages.
//   2. load       — N concurrent TCP clients replay the arrival schedule
//                   with a mixed op profile (~55% status, 15% ping,
//                   25% submit of sample-scale simulations, 5% watch);
//                   per-op p50/p99/p999 from log2 histograms.
//   3. saturation — closed-loop ping burst: ceiling ops/sec.
//
// Usage: bench_serve [--smoke] [--clients N] [--rate R] [--duration S]
//                    [--engines N] [--threads N] [--port P] [--out PATH]
//
// Emits BENCH_serve.json (or --out PATH) with the daemon flags, preflight
// verdicts, per-op latency percentiles and the saturation throughput.
// --smoke shrinks the run and exits non-zero on any protocol error or
// failed preflight gate (CI tripwire).

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "api/json.hpp"
#include "api/metrics.hpp"
#include "api/server.hpp"
#include "serve/fleet.hpp"

namespace api = gpurf::api;

namespace {

using Clock = std::chrono::steady_clock;

struct OpStats {
  gpurf::LatencyHistogram lat;
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> app_errors{0};       ///< ok:false envelopes
  std::atomic<uint64_t> protocol_errors{0};  ///< transport / parse failures
};

uint64_t us_since(Clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - t0)
          .count());
}

std::string submit_line(const std::string& workload) {
  api::JsonWriter w;
  w.begin_object();
  w.field("op", "submit");
  w.field("kind", "simulate");
  w.field("workload", workload);
  w.field("scale", "sample");
  w.field("deadline_ms", static_cast<int64_t>(30000));
  w.end_object();
  return w.str();
}

std::string job_line(const char* op, uint64_t job, int64_t timeout_ms = -1) {
  api::JsonWriter w;
  w.begin_object();
  w.field("op", op);
  w.field("job", job);
  if (timeout_ms >= 0) w.field("timeout_ms", timeout_ms);
  w.end_object();
  return w.str();
}

/// Record the outcome of one call into `st`; true when the envelope came
/// back parseable (ok:false still counts — the *protocol* worked).
bool account(OpStats& st, const gpurf::StatusOr<api::JsonValue>& resp,
             uint64_t latency_us) {
  if (!resp.ok()) {
    st.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const api::JsonValue* okf = resp->get("ok");
  if (!okf) {
    st.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  st.lat.record_us(latency_us);
  if (okf->as_bool(false))
    st.ok.fetch_add(1, std::memory_order_relaxed);
  else
    st.app_errors.fetch_add(1, std::memory_order_relaxed);
  return true;
}

// ------------------------------------------------------------- preflight

struct Preflight {
  bool tcp_unix_identical = false;
  bool watch_wait_consistent = false;
  bool quota_enforced = false;
  bool histograms_ok = false;

  bool all() const {
    return tcp_unix_identical && watch_wait_consistent && quota_enforced &&
           histograms_ok;
  }
};

/// Submit + wait one sample simulation through `c`, returning the parsed
/// "result" value (stream=true on request exercises the chunked path).
gpurf::StatusOr<api::JsonValue> run_one(api::Client& c,
                                        const std::string& workload,
                                        bool stream) {
  auto sub = c.call_json(submit_line(workload));
  if (!sub.ok()) return sub.status();
  const api::JsonValue* id = sub->get("job");
  if (!id) return gpurf::Status::Internal("submit reply carries no job id");
  api::JsonWriter w;
  w.begin_object();
  w.field("op", "wait");
  w.field("job", static_cast<uint64_t>(id->as_int()));
  w.field("timeout_ms", static_cast<int64_t>(60000));
  if (stream) {
    w.field("stream", true);
    w.field("chunk_bytes", static_cast<int64_t>(512));
  }
  w.end_object();
  auto done = c.call_json(w.str());
  if (!done.ok()) return done.status();
  const api::JsonValue* res = done->get("result");
  if (!res)
    return gpurf::Status::Internal("wait reply carries no result (state " +
                                   (done->get("state")
                                        ? done->get("state")->as_string()
                                        : std::string("?")) +
                                   ")");
  return *res;
}

Preflight run_preflight(gpurf::serve::EngineFleet& fleet,
                        const std::string& socket_path, int tcp_port,
                        const std::string& workload) {
  Preflight pf;

  api::Client unix_c(socket_path);
  api::Client tcp_c("127.0.0.1", tcp_port);
  if (!unix_c.status().ok() || !tcp_c.status().ok()) {
    std::fprintf(stderr, "preflight: connect failed (%s / %s)\n",
                 unix_c.status().to_string().c_str(),
                 tcp_c.status().to_string().c_str());
    return pf;
  }

  // Gate 1: the same simulation served over TCP (chunk-streamed) and over
  // AF_UNIX (inline) must deep-compare equal — transport must not touch
  // payloads.
  {
    auto via_unix = run_one(unix_c, workload, /*stream=*/false);
    auto via_tcp = run_one(tcp_c, workload, /*stream=*/true);
    if (via_unix.ok() && via_tcp.ok())
      pf.tcp_unix_identical = api::deep_equal(*via_unix, *via_tcp);
    else
      std::fprintf(stderr, "preflight: identity runs failed (%s / %s)\n",
                   via_unix.status().to_string().c_str(),
                   via_tcp.status().to_string().c_str());
  }

  // Gate 2: watch's terminal envelope agrees with a status poll.
  {
    auto sub = tcp_c.call_json(submit_line(workload));
    if (sub.ok() && sub->get("job")) {
      const uint64_t id = static_cast<uint64_t>(sub->get("job")->as_int());
      size_t progress_events = 0;
      auto terminal = tcp_c.watch(
          id, 60000, [&](const api::JsonValue&) { ++progress_events; });
      auto polled = unix_c.call_json(job_line("status", id));
      if (terminal.ok() && polled.ok()) {
        const std::string ws = terminal->get("state")
                                   ? terminal->get("state")->as_string()
                                   : "?";
        const std::string ps =
            polled->get("state") ? polled->get("state")->as_string() : "??";
        pf.watch_wait_consistent =
            ws == ps && ws == "done" &&
            terminal->get("event") &&
            terminal->get("event")->as_string() == "terminal";
        (void)progress_events;  // may be zero for a fast sample run
      }
    }
  }

  // Gate 3: a second Server on the *same* fleet with a 1-submit bucket
  // and in-flight cap must reject the burst with RESOURCE_EXHAUSTED and a
  // usable retry_after_ms.
  {
    api::ServerOptions qopts;
    qopts.listen_port = 0;
    qopts.token_rate = 1.0;
    qopts.token_burst = 1.0;
    qopts.token_max_inflight = 1;
    api::Server qserver(fleet, qopts);
    if (qserver.start().ok()) {
      api::Client qc("127.0.0.1", qserver.tcp_port());
      bool saw_reject = false;
      for (int i = 0; i < 4 && !saw_reject; ++i) {
        auto resp = qc.call_json(submit_line(workload));
        if (!resp.ok()) break;
        if (!resp->get("ok")->as_bool(false)) {
          const api::JsonValue* err = resp->get("error");
          const std::string code =
              err && err->get("code") ? err->get("code")->as_string() : "";
          saw_reject = code == "RESOURCE_EXHAUSTED" &&
                       api::envelope_retry_after_ms(*resp) >= 0;
        }
      }
      pf.quota_enforced = saw_reject;
      qserver.stop();
    }
  }

  // Gate 4: the histograms op returns all four latency stages.
  {
    auto h = tcp_c.call_json("{\"op\":\"histograms\"}");
    if (h.ok() && h->get("histograms")) {
      const api::JsonValue& hh = *h->get("histograms");
      pf.histograms_ok = hh.get("queue_wait") && hh.get("tune") &&
                         hh.get("sim") && hh.get("serialize");
    }
  }
  return pf;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int clients = 128, engines = 2, threads = 0, port = 0;
  double rate = 400.0, duration_s = 10.0;
  std::string out_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    const auto arg = [&](const char* n) {
      return std::strcmp(argv[i], n) == 0;
    };
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg("--smoke")) smoke = true;
    else if (arg("--clients")) { if (const char* v = next()) clients = std::atoi(v); }
    else if (arg("--rate")) { if (const char* v = next()) rate = std::atof(v); }
    else if (arg("--duration")) { if (const char* v = next()) duration_s = std::atof(v); }
    else if (arg("--engines")) { if (const char* v = next()) engines = std::atoi(v); }
    else if (arg("--threads")) { if (const char* v = next()) threads = std::atoi(v); }
    else if (arg("--port")) { if (const char* v = next()) port = std::atoi(v); }
    else if (arg("--out")) { if (const char* v = next()) out_path = v; }
    else {
      std::fprintf(stderr,
                   "usage: bench_serve [--smoke] [--clients N] [--rate R] "
                   "[--duration S] [--engines N] [--threads N] [--port P] "
                   "[--out PATH]\n");
      return 2;
    }
  }
  if (smoke) {
    clients = std::min(clients, 12);
    rate = std::min(rate, 80.0);
    duration_s = std::min(duration_s, 2.0);
  }
  if (clients < 1) clients = 1;
  if (engines < 1) engines = 1;

  // Self-hosted daemon: a sharded fleet behind both transports.  The disk
  // cache stays off so the bench is hermetic and rerunnable.
  gpurf::EngineOptions eo;
  eo.use_disk_cache = false;
  if (threads > 0) eo.threads = threads;
  gpurf::serve::EngineFleet fleet(eo, engines);

  api::ServerOptions sopts;
  sopts.socket_path = "/tmp/gpurf_bench_serve_" +
                      std::to_string(static_cast<long>(::getpid())) + ".sock";
  sopts.listen_host = "127.0.0.1";
  sopts.listen_port = port;  // 0 = ephemeral
  api::Server server(fleet, sopts);
  if (gpurf::Status st = server.start(); !st.ok()) {
    std::fprintf(stderr, "bench_serve: %s\n", st.to_string().c_str());
    return 1;
  }
  const int tcp_port = server.tcp_port();
  const std::string daemon_flags =
      "--socket " + sopts.socket_path + " --listen 127.0.0.1:" +
      std::to_string(tcp_port) + " --engines " + std::to_string(engines) +
      (threads > 0 ? " --threads " + std::to_string(threads) : "");
  const std::string workload = "DWT2D";

  std::printf("bench_serve: %d TCP clients @ %.0f req/s for %.1fs against "
              "%d engine shard(s) on 127.0.0.1:%d (%s)\n",
              clients, rate, duration_s, engines, tcp_port,
              smoke ? "smoke" : "full");

  // ---- phase 1: preflight ------------------------------------------------
  const Preflight pf =
      run_preflight(fleet, sopts.socket_path, tcp_port, workload);
  std::printf("preflight: tcp==unix %s | watch==wait %s | quota %s | "
              "histograms %s\n",
              pf.tcp_unix_identical ? "ok" : "FAIL",
              pf.watch_wait_consistent ? "ok" : "FAIL",
              pf.quota_enforced ? "ok" : "FAIL",
              pf.histograms_ok ? "ok" : "FAIL");

  // ---- phase 2: open-loop mixed load ------------------------------------
  enum OpClass { kStatus = 0, kPing, kSubmit, kWatch, kNumOps };
  static const char* kOpNames[kNumOps] = {"status", "ping", "submit",
                                          "watch"};
  OpStats stats[kNumOps];
  const size_t total = static_cast<size_t>(rate * duration_s);
  std::atomic<size_t> next_arrival{0};
  std::atomic<uint64_t> last_job{0};

  // Seed one finished job so early status/watch ops address a real id.
  {
    api::Client seed("127.0.0.1", tcp_port);
    auto sub = seed.call_json(submit_line(workload));
    if (sub.ok() && sub->get("job")) {
      const uint64_t id = static_cast<uint64_t>(sub->get("job")->as_int());
      (void)seed.call_json(job_line("wait", id, 60000));
      last_job.store(id, std::memory_order_relaxed);
    }
  }

  const auto t0 = Clock::now() + std::chrono::milliseconds(50);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      api::Client cli("127.0.0.1", tcp_port);
      if (!cli.status().ok()) {
        // Count every arrival this worker would have served as a
        // protocol error rather than silently shrinking the load.
        for (;;) {
          const size_t i = next_arrival.fetch_add(1);
          if (i >= total) return;
          stats[kStatus].protocol_errors.fetch_add(1);
        }
      }
      (void)c;
      for (;;) {
        const size_t i = next_arrival.fetch_add(1);
        if (i >= total) break;
        const auto scheduled =
            t0 + std::chrono::microseconds(
                     static_cast<int64_t>(1e6 * double(i) / rate));
        std::this_thread::sleep_until(scheduled);
        // Mix by arrival index: deterministic, independent of thread
        // interleaving.  0-10 status, 11-13 ping, 14-18 submit, 19 watch.
        const int slot = static_cast<int>(i % 20);
        const OpClass op = slot <= 10   ? kStatus
                           : slot <= 13 ? kPing
                           : slot <= 18 ? kSubmit
                                        : kWatch;
        if (op == kStatus) {
          account(stats[op],
                  cli.call_json(job_line(
                      "status", last_job.load(std::memory_order_relaxed))),
                  us_since(scheduled));
        } else if (op == kPing) {
          account(stats[op], cli.call_json("{\"op\":\"ping\"}"),
                  us_since(scheduled));
        } else if (op == kSubmit) {
          auto resp = cli.call_json(submit_line(workload));
          if (resp.ok() && resp->get("job"))
            last_job.store(static_cast<uint64_t>(resp->get("job")->as_int()),
                           std::memory_order_relaxed);
          account(stats[op], resp, us_since(scheduled));
        } else {
          account(stats[op],
                  cli.watch(last_job.load(std::memory_order_relaxed), 2000),
                  us_since(scheduled));
        }
      }
    });
  }
  for (auto& t : workers) t.join();

  // Let in-flight submits settle before the saturation burst (and before
  // teardown) so their queue/tune/sim samples land in the histograms.
  (void)fleet.drain_all(smoke ? 10000 : 30000);

  // ---- phase 3: closed-loop saturation -----------------------------------
  const double sat_seconds = smoke ? 1.0 : 3.0;
  std::atomic<uint64_t> sat_ops{0};
  std::atomic<bool> sat_stop{false};
  std::vector<std::thread> sat_workers;
  for (int c = 0; c < clients; ++c) {
    sat_workers.emplace_back([&] {
      api::Client cli("127.0.0.1", tcp_port);
      if (!cli.status().ok()) return;
      while (!sat_stop.load(std::memory_order_relaxed)) {
        if (cli.call("{\"op\":\"ping\"}").ok())
          sat_ops.fetch_add(1, std::memory_order_relaxed);
        else
          break;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(sat_seconds));
  sat_stop.store(true);
  for (auto& t : sat_workers) t.join();
  const double sat_rate = double(sat_ops.load()) / sat_seconds;

  // ---- report -------------------------------------------------------------
  uint64_t protocol_errors = 0;
  std::printf("\n%-8s %10s %8s %8s %12s %12s %12s\n", "op", "ok", "app_err",
              "proto", "p50[us]", "p99[us]", "p999[us]");
  for (int op = 0; op < kNumOps; ++op) {
    const gpurf::HistogramSnapshot h = stats[op].lat.snapshot();
    protocol_errors += stats[op].protocol_errors.load();
    std::printf("%-8s %10llu %8llu %8llu %12llu %12llu %12llu\n",
                kOpNames[op],
                static_cast<unsigned long long>(stats[op].ok.load()),
                static_cast<unsigned long long>(stats[op].app_errors.load()),
                static_cast<unsigned long long>(
                    stats[op].protocol_errors.load()),
                static_cast<unsigned long long>(h.percentile_us(0.50)),
                static_cast<unsigned long long>(h.percentile_us(0.99)),
                static_cast<unsigned long long>(h.percentile_us(0.999)));
  }
  std::printf("saturation: %.0f ops/sec (closed-loop ping, %d clients)\n",
              sat_rate, clients);

  std::FILE* json = std::fopen(out_path.c_str(), "w");
  if (json) {
    std::fprintf(json,
                 "{\n  \"smoke\": %s,\n  \"clients\": %d,\n"
                 "  \"engines\": %d,\n  \"rate_per_sec\": %.1f,\n"
                 "  \"duration_s\": %.1f,\n  \"daemon_flags\": \"%s\",\n",
                 smoke ? "true" : "false", clients, engines, rate, duration_s,
                 daemon_flags.c_str());
    std::fprintf(json,
                 "  \"preflight\": {\"tcp_unix_identical\": %s, "
                 "\"watch_wait_consistent\": %s, \"quota_enforced\": %s, "
                 "\"histograms_ok\": %s},\n",
                 pf.tcp_unix_identical ? "true" : "false",
                 pf.watch_wait_consistent ? "true" : "false",
                 pf.quota_enforced ? "true" : "false",
                 pf.histograms_ok ? "true" : "false");
    std::fprintf(json, "  \"ops\": {");
    for (int op = 0; op < kNumOps; ++op) {
      const gpurf::HistogramSnapshot h = stats[op].lat.snapshot();
      std::fprintf(
          json,
          "%s\n    \"%s\": {\"ok\": %llu, \"app_errors\": %llu, "
          "\"protocol_errors\": %llu, \"p50_us\": %llu, \"p99_us\": %llu, "
          "\"p999_us\": %llu}",
          op ? "," : "", kOpNames[op],
          static_cast<unsigned long long>(stats[op].ok.load()),
          static_cast<unsigned long long>(stats[op].app_errors.load()),
          static_cast<unsigned long long>(stats[op].protocol_errors.load()),
          static_cast<unsigned long long>(h.percentile_us(0.50)),
          static_cast<unsigned long long>(h.percentile_us(0.99)),
          static_cast<unsigned long long>(h.percentile_us(0.999)));
    }
    std::fprintf(json,
                 "\n  },\n  \"saturation_ops_per_sec\": %.1f\n}\n", sat_rate);
    std::fclose(json);
    std::printf("wrote %s\n", out_path.c_str());
  }

  server.stop();
  ::unlink(sopts.socket_path.c_str());

  if (smoke && (protocol_errors > 0 || !pf.all())) {
    std::fprintf(stderr,
                 "bench_serve --smoke: FAILED (protocol_errors=%llu, "
                 "preflight %s)\n",
                 static_cast<unsigned long long>(protocol_errors),
                 pf.all() ? "ok" : "failed");
    return 1;
  }
  return 0;
}
