// bench_table1 — reproduces Table 1 (§2, motivation): register pressure,
// occupancy and IPC of IMGVF under the static framework, and the
// artificial-occupancy control experiment.
//
//   Paper (Fermi GTX 480, GPGPU-Sim):
//     Original                      52 regs  21%    IPC 196
//     Narrow integers               46
//     Narrow floats                 36
//     Narrow integers + floats      29       62.5%  IPC 352
//     Artificial occupancy increase 52       62.5%  IPC 377

#include <cstdio>

#include "sim/gpu.hpp"
#include "workloads/pipeline.hpp"
#include "workloads/workload.hpp"

namespace wl = gpurf::workloads;
namespace sim = gpurf::sim;

int main() {
  const auto w = wl::make_imgvf();
  const auto& pr = wl::run_pipeline(*w);
  const sim::GpuConfig gpu = sim::GpuConfig::fermi_gtx480();

  std::printf("Table 1: IMGVF motivation (quality threshold: perfect)\n");
  std::printf("%-34s %8s %10s %8s\n", "", "RegPressure", "Occupancy", "IPC");

  // Original.
  auto inst = w->make_instance(wl::Scale::kFull, 0);
  auto spec = wl::make_launch_spec(*w, inst, pr, wl::SimMode::kOriginal);
  auto orig = sim::simulate(gpu, sim::CompressionConfig::baseline(), spec);
  std::printf("%-34s %8u %9.1f%% %8.0f\n", "Original",
              pr.pressure.original, orig.occupancy.percent,
              orig.stats.ipc());

  // Framework parts in isolation: pressure only (no timing change alone).
  std::printf("%-34s %8u %10s %8s\n", "Narrow integers",
              pr.pressure.narrow_int, "-", "-");
  std::printf("%-34s %8u %10s %8s\n", "Narrow floats",
              pr.pressure.narrow_float_perfect, "-", "-");

  // Both parts + the proposed register file.
  auto inst2 = w->make_instance(wl::Scale::kFull, 0);
  auto spec2 =
      wl::make_launch_spec(*w, inst2, pr, wl::SimMode::kCompressedPerfect);
  auto comp = sim::simulate(
      gpu, wl::make_compression_config(wl::SimMode::kCompressedPerfect),
      spec2);
  std::printf("%-34s %8u %9.1f%% %8.0f\n", "Narrow integers + floats",
              pr.pressure.both_perfect, comp.occupancy.percent,
              comp.stats.ipc());

  // Artificial occupancy increase: original pressure, enlarged register
  // file (the paper grows the simulated RF so more blocks fit).
  sim::GpuConfig big = gpu;
  big.registers_per_sm = 65536;
  auto inst3 = w->make_instance(wl::Scale::kFull, 0);
  auto spec3 = wl::make_launch_spec(*w, inst3, pr, wl::SimMode::kOriginal);
  auto art = sim::simulate(big, sim::CompressionConfig::baseline(), spec3);
  std::printf("%-34s %8u %9.1f%% %8.0f\n", "Artificial occupancy increase",
              pr.pressure.original, art.occupancy.percent, art.stats.ipc());

  std::printf(
      "\npaper: 52/21%%/196 | 46 | 36 | 29/62.5%%/352 | 52/62.5%%/377\n");
  std::printf("IPC uplift: compressed %+.1f%%  artificial %+.1f%%\n",
              100.0 * (comp.stats.ipc() / orig.stats.ipc() - 1.0),
              100.0 * (art.stats.ipc() / orig.stats.ipc() - 1.0));
  return 0;
}
