// bench_table1 — reproduces Table 1 (§2, motivation): register pressure,
// occupancy and IPC of IMGVF under the static framework, and the
// artificial-occupancy control experiment.
//
// The artificial experiment runs on a *second* Engine whose GpuConfig has
// a doubled register file — exactly the per-session configuration the
// Engine API exists for (two GPU models in one process, no shared state).
// Both engines point at the same cache directory, so the doubled-RF
// session reuses the tuned precision maps from disk instead of re-tuning.
//
//   Paper (Fermi GTX 480, GPGPU-Sim):
//     Original                      52 regs  21%    IPC 196
//     Narrow integers               46
//     Narrow floats                 36
//     Narrow integers + floats      29       62.5%  IPC 352
//     Artificial occupancy increase 52       62.5%  IPC 377

#include <cstdio>

#include "api/engine.hpp"

namespace wl = gpurf::workloads;
namespace sim = gpurf::sim;

int main() {
  gpurf::Engine engine;

  std::printf("Table 1: IMGVF motivation (quality threshold: perfect)\n");
  std::printf("%-34s %8s %10s %8s\n", "", "RegPressure", "Occupancy", "IPC");

  auto pr = engine.pipeline("IMGVF");
  if (!pr.ok()) {
    std::fprintf(stderr, "%s\n", pr.status().to_string().c_str());
    return 1;
  }
  const auto& pressure = (*pr)->pressure;

  // Original.
  auto orig = engine.simulate("IMGVF", wl::SimMode::kOriginal);
  if (!orig.ok()) {
    std::fprintf(stderr, "%s\n", orig.status().to_string().c_str());
    return 1;
  }
  std::printf("%-34s %8u %9.1f%% %8.0f\n", "Original", pressure.original,
              orig->occupancy.percent, orig->stats.ipc());

  // Framework parts in isolation: pressure only (no timing change alone).
  std::printf("%-34s %8u %10s %8s\n", "Narrow integers",
              pressure.narrow_int, "-", "-");
  std::printf("%-34s %8u %10s %8s\n", "Narrow floats",
              pressure.narrow_float_perfect, "-", "-");

  // Both parts + the proposed register file.
  auto comp = engine.simulate("IMGVF", wl::SimMode::kCompressedPerfect);
  if (!comp.ok()) {
    std::fprintf(stderr, "%s\n", comp.status().to_string().c_str());
    return 1;
  }
  std::printf("%-34s %8u %9.1f%% %8.0f\n", "Narrow integers + floats",
              pressure.both_perfect, comp->occupancy.percent,
              comp->stats.ipc());

  // Artificial occupancy increase: original pressure, enlarged register
  // file (the paper grows the simulated RF so more blocks fit) — a second
  // concurrently-live Engine with a different GPU model.
  sim::GpuConfig big = engine.options().gpu;
  big.registers_per_sm = 65536;
  gpurf::Engine big_engine(gpurf::EngineOptions().with_gpu(big).with_cache_dir(
      engine.options().cache_dir));
  auto art = big_engine.simulate("IMGVF", wl::SimMode::kOriginal);
  if (!art.ok()) {
    std::fprintf(stderr, "%s\n", art.status().to_string().c_str());
    return 1;
  }
  std::printf("%-34s %8u %9.1f%% %8.0f\n", "Artificial occupancy increase",
              pressure.original, art->occupancy.percent, art->stats.ipc());

  std::printf(
      "\npaper: 52/21%%/196 | 46 | 36 | 29/62.5%%/352 | 52/62.5%%/377\n");
  std::printf("IPC uplift: compressed %+.1f%%  artificial %+.1f%%\n",
              100.0 * (comp->stats.ipc() / orig->stats.ipc() - 1.0),
              100.0 * (art->stats.ipc() / orig->stats.ipc() - 1.0));
  return 0;
}
