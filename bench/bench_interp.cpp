// bench_interp — functional-replay throughput of the interpreter (ISSUE 2).
//
// The tuner and the Fig. 9-12 benches replay kernels functionally thousands
// of times, so insts/sec of run_functional() is the pipeline's governing
// metric.  This bench measures it per workload in three modes:
//
//   scalar  — per-lane reference dispatch (exec_lane), serial blocks;
//   soa     — warp-vectorized SoA dispatch, serial blocks;
//   soa-Tn  — SoA dispatch, grid blocks sharded over n pool threads.
//
// Every mode's output buffer and thread-instruction count are checked
// bit-identical against the scalar reference before timing is reported, and
// the results land in BENCH_interp.json so the perf trajectory is tracked
// from this PR on.
//
// Usage: bench_interp [--smoke] [workload ...]
//   default workloads: all Table-4 kernels
//   --smoke: CI tripwire — exit nonzero on any cross-mode mismatch or if
//            SoA throughput regresses below the scalar reference (timing
//            stays min-of-3 so one scheduler hiccup can't flake the build).
//   GPURF_BENCH_REPS: timing repetitions per mode (default 3)

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "workloads/workload.hpp"

namespace wl = gpurf::workloads;

namespace {

struct ModeResult {
  double secs = 0.0;
  uint64_t insts = 0;
  std::vector<float> out;

  double insts_per_sec() const { return secs > 0 ? insts / secs : 0.0; }
};

double now_secs() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Run `reps` functional replays; returns the best (minimum) wall time of a
/// single replay plus the outputs of the last one.
ModeResult run_mode(const wl::Workload& w, const wl::RunOptions& opt,
                    int threads, int reps) {
  gpurf::common::ThreadPool::instance().resize(threads);
  ModeResult r;
  r.secs = 1e30;
  for (int i = 0; i < reps; ++i) {
    auto inst = w.make_instance(wl::Scale::kSample, 0);
    wl::RunOptions o = opt;
    o.thread_insts = &r.insts;
    const double t0 = now_secs();
    r.out = w.run(inst, nullptr, nullptr, o);
    const double t1 = now_secs();
    r.secs = std::min(r.secs, t1 - t0);
  }
  return r;
}

bool bits_equal(const std::vector<float>& a, const std::vector<float>& b) {
  if (a.size() != b.size()) return false;
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* out_path = "BENCH_interp.json";
  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke")
      smoke = true;
    else if (std::string(argv[i]) == "--out" && i + 1 < argc)
      out_path = argv[++i];
    else
      names.emplace_back(argv[i]);
  }

  int reps = 3;
  if (const char* env = std::getenv("GPURF_BENCH_REPS")) {
    const int n = std::atoi(env);
    if (n >= 1) reps = n;
  }
  const int nthreads = gpurf::common::default_thread_count();

  std::printf("bench_interp: functional replay throughput (Minsts/sec, "
              "best of %d)\n", reps);
  std::printf("%-11s %10s %10s %10s %8s %8s   %s\n", "Kernel", "scalar",
              "soa", nthreads > 1 ? "soa-par" : "soa-T1", "soa/sc",
              "par/sc", "identical");

  std::FILE* json = std::fopen(out_path, "w");
  if (json) std::fprintf(json, "{\n  \"threads\": %d,\n  \"workloads\": [", nthreads);

  int failures = 0;
  bool first_row = true;
  for (const auto& w : wl::make_all_workloads()) {
    if (!names.empty()) {
      bool wanted = false;
      for (const auto& n : names) wanted |= (n == w->spec().name);
      if (!wanted) continue;
    }

    wl::RunOptions scalar_opt{/*use_soa=*/false, /*block_parallel=*/false};
    wl::RunOptions soa_opt{/*use_soa=*/true, /*block_parallel=*/false};
    wl::RunOptions par_opt{/*use_soa=*/true, /*block_parallel=*/true};

    const auto scalar = run_mode(*w, scalar_opt, 1, reps);
    const auto soa = run_mode(*w, soa_opt, 1, reps);
    const auto par = run_mode(*w, par_opt, nthreads, reps);

    const bool identical = bits_equal(scalar.out, soa.out) &&
                           bits_equal(scalar.out, par.out) &&
                           scalar.insts == soa.insts &&
                           scalar.insts == par.insts;
    if (!identical) ++failures;

    const double sc = scalar.insts_per_sec();
    const double so = soa.insts_per_sec();
    const double pa = par.insts_per_sec();
    // Smoke tripwire: the SoA path must never fall behind the scalar
    // reference it replaced (generous margin for CI timer noise).
    if (smoke && so < 0.9 * sc) ++failures;

    std::printf("%-11s %10.1f %10.1f %10.1f %7.2fx %7.2fx   %s\n",
                w->spec().name.c_str(), sc / 1e6, so / 1e6, pa / 1e6,
                sc > 0 ? so / sc : 0.0, sc > 0 ? pa / sc : 0.0,
                identical ? "yes" : "NO <-- bug");

    if (json) {
      std::fprintf(json,
                   "%s\n    {\"name\": \"%s\", \"thread_insts\": %llu, "
                   "\"scalar_ips\": %.0f, \"soa_ips\": %.0f, "
                   "\"soa_parallel_ips\": %.0f, \"identical\": %s}",
                   first_row ? "" : ",", w->spec().name.c_str(),
                   static_cast<unsigned long long>(scalar.insts), sc, so, pa,
                   identical ? "true" : "false");
      first_row = false;
    }
  }
  if (json) {
    std::fprintf(json, "\n  ]\n}\n");
    std::fclose(json);
  }

  if (failures) {
    std::printf("\n%d workload(s) failed cross-mode verification\n", failures);
    return 1;
  }
  return 0;
}
