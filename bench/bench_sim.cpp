// bench_sim — serial vs. multi-SM-sharded timing-simulator throughput
// (ISSUE 5).  For each workload the same full-scale launch is simulated
// once per shard count; the serial run (shards = 1) is the reference
// schedule and every sharded run must reproduce its SimStats bit for bit
// (the determinism contract), so the only thing that may change is
// wall-clock.  Reported metric: simulated cycles per second.
//
// The launch uses the original register pressure (one allocate_slices
// call — no precision tuning), so the bench starts instantly on a fresh
// checkout; the compressed column enables the proposed pipeline's extra
// stages (indirection read, value-converter budget, writeback delay)
// without needing a tuned allocation.
//
// Usage: bench_sim [--smoke] [workload ...]
//          default workloads: DWT2D Hotspot Hybridsort SSAO
//        GPURF_BENCH_SHARDS="1 4"   shard counts to sweep (first is the
//          reference; default "1 N" with N = the default thread count)
//
// Emits BENCH_sim.json: per (workload x config x shards) wall seconds,
// cycles/sec and the speedup over the serial schedule.  --smoke runs a
// sample-scale subset and exits non-zero on any stats divergence (cheap
// CI tripwire).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "alloc/slice_alloc.hpp"
#include "common/thread_pool.hpp"
#include "sim/gpu.hpp"
#include "workloads/pipeline.hpp"
#include "workloads/workload.hpp"

namespace wl = gpurf::workloads;
namespace sim = gpurf::sim;

namespace {

struct RunResult {
  sim::SimStats stats;
  double seconds = 0.0;

  double cycles_per_sec() const {
    return seconds > 0.0 ? double(stats.cycles) / seconds : 0.0;
  }
};

RunResult run_once(const wl::Workload& w, const sim::CompressionConfig& cc,
                   wl::Scale scale, int shards) {
  wl::PipelineResult pr;
  pr.pressure.original =
      gpurf::alloc::allocate_slices(w.kernel(), nullptr, nullptr,
                                    {false, false})
          .num_physical_regs;
  auto inst = w.make_instance(scale, 0);
  auto spec = wl::make_launch_spec(w, inst, pr, wl::SimMode::kOriginal);
  sim::SimOptions so;
  so.shards = shards;
  RunResult r;
  const auto t0 = std::chrono::steady_clock::now();
  r.stats = sim::simulate(sim::GpuConfig::fermi_gtx480(), cc, spec, nullptr,
                          so)
                .stats;
  r.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return r;
}

std::unique_ptr<wl::Workload> make_by_name(const std::string& name) {
  for (auto& w : wl::make_all_workloads())
    if (w->spec().name == name) return std::move(w);
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* out_path = "BENCH_sim.json";
  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      smoke = true;
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
    else
      names.push_back(argv[i]);
  }
  if (names.empty())
    names = smoke ? std::vector<std::string>{"DWT2D", "SSAO"}
                  : std::vector<std::string>{"DWT2D", "Hotspot",
                                             "Hybridsort", "SSAO"};

  std::vector<int> shard_counts;
  {
    const char* env = std::getenv("GPURF_BENCH_SHARDS");
    std::istringstream ss(env ? env : "");
    for (int t; ss >> t;)
      if (t >= 1) shard_counts.push_back(t);
    if (shard_counts.empty()) {
      shard_counts = {1, gpurf::common::default_thread_count()};
      if (shard_counts[1] <= 1) shard_counts[1] = smoke ? 2 : 4;
    }
  }
  int max_shards = 1;
  for (int s : shard_counts) max_shards = std::max(max_shards, s);
  gpurf::common::ThreadPool::instance().resize(max_shards);

  const wl::Scale scale = smoke ? wl::Scale::kSample : wl::Scale::kFull;
  const struct {
    const char* label;
    sim::CompressionConfig cc;
  } configs[] = {
      {"baseline", sim::CompressionConfig::baseline()},
      {"compressed", sim::CompressionConfig::paper_default()},
  };

  std::printf("bench_sim: timing-simulator throughput, serial vs sharded "
              "(%s scale)\n",
              smoke ? "sample" : "full");
  std::printf("%-11s %-10s %10s", "Kernel", "Config", "cycles");
  for (int s : shard_counts) std::printf("   T=%-2d [Mc/s]", s);
  std::printf("   speedup   identical\n");

  std::FILE* json = std::fopen(out_path, "w");
  if (json)
    std::fprintf(json, "{\n  \"scale\": \"%s\",\n  \"runs\": [",
                 smoke ? "sample" : "full");

  int divergences = 0;
  bool first_row = true;
  for (const auto& name : names) {
    auto w = make_by_name(name);
    if (!w) {
      std::printf("%-11s   unknown workload, skipped\n", name.c_str());
      continue;
    }
    for (const auto& cfg : configs) {
      std::vector<RunResult> runs;
      runs.reserve(shard_counts.size());
      for (int s : shard_counts)
        runs.push_back(run_once(*w, cfg.cc, scale, s));
      bool identical = true;
      for (size_t i = 1; i < runs.size(); ++i)
        identical = identical && runs[0].stats == runs[i].stats;
      if (!identical) ++divergences;

      std::printf("%-11s %-10s %10llu", name.c_str(), cfg.label,
                  static_cast<unsigned long long>(runs[0].stats.cycles));
      for (const auto& r : runs)
        std::printf("   %10.3f", r.cycles_per_sec() / 1e6);
      std::printf("   %6.2fx   %s\n",
                  runs.back().cycles_per_sec() /
                      std::max(1.0, runs[0].cycles_per_sec()),
                  identical ? "yes" : "NO <-- bug");

      if (json) {
        std::fprintf(json,
                     "%s\n    {\"kernel\": \"%s\", \"config\": \"%s\", "
                     "\"cycles\": %llu, \"identical\": %s, \"shards\": [",
                     first_row ? "" : ",", name.c_str(), cfg.label,
                     static_cast<unsigned long long>(runs[0].stats.cycles),
                     identical ? "true" : "false");
        for (size_t i = 0; i < runs.size(); ++i)
          std::fprintf(json,
                       "%s{\"shards\": %d, \"seconds\": %.6f, "
                       "\"cycles_per_sec\": %.1f, \"speedup\": %.3f}",
                       i ? ", " : "", shard_counts[i], runs[i].seconds,
                       runs[i].cycles_per_sec(),
                       runs[i].cycles_per_sec() /
                           std::max(1.0, runs[0].cycles_per_sec()));
        std::fprintf(json, "]}");
        first_row = false;
      }
    }
  }
  if (json) {
    std::fprintf(json, "\n  ]\n}\n");
    std::fclose(json);
  }

  if (divergences) {
    std::printf("\n%d run(s) diverged from the serial schedule\n",
                divergences);
    return 1;
  }
  return 0;
}
