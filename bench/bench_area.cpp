// bench_area — regenerates the §6.4 transistor-count area analysis.
//
//   Paper: TVE 1536(+24); warp extractor ~50K; extractors 800K;
//   converters 249,600; tables 98,304; truncators 518,016; CU 6,774
//   (108,384 total); ~1.8M per SM; ~27M per chip; < 1 % of 3.1B.

#include <cstdio>

#include "rf/area_model.hpp"

using gpurf::rf::AreaConfig;
using gpurf::rf::compute_area;

int main() {
  const AreaConfig cfg = AreaConfig::fermi_gtx480();
  const auto a = compute_area(cfg);

  std::printf("Section 6.4: area overhead (%s)\n", cfg.name.c_str());
  std::printf("%-38s %12s %12s\n", "Structure", "Transistors", "Paper");
  std::printf("%-38s %12lld %12s\n", "Thread value extractor (TVE)", a.tve,
              "1560");
  std::printf("%-38s %12lld %12s\n", "Warp value extractor (32 TVEs)",
              a.warp_extractor, "~50K");
  std::printf("%-38s %12lld %12s\n", "Value extractors (16 banks)",
              a.extractors_total, "~800K");
  std::printf("%-38s %12lld %12s\n", "Value converters (6 warp units)",
              a.converters_total, "249,600");
  std::printf("%-38s %12lld %12s\n", "Indirection table (one)",
              a.indirection_table, "49,152");
  std::printf("%-38s %12lld %12s\n", "Indirection tables (src + dst)",
              a.tables_total, "98,304");
  std::printf("%-38s %12lld %12s\n", "Thread value truncator (TVT)", a.tvt,
              "5,396");
  std::printf("%-38s %12lld %12s\n", "Value truncators (3 warp units)",
              a.truncators_total, "518,016");
  std::printf("%-38s %12lld %12s\n", "Collector-unit extension (one)",
              a.cu_extension, "6,774");
  std::printf("%-38s %12lld %12s\n", "Collector-unit extensions (16)",
              a.cus_total, "108,384");
  std::printf("%-38s %12lld %12s\n", "Total per SM", a.per_sm, "~1.8M");
  std::printf("%-38s %12lld %12s\n", "Total per chip (15 SMs)", a.chip_total,
              "~27M");
  std::printf("%-38s %11.2f%% %12s\n", "Fraction of chip budget",
              100.0 * a.fraction_of_chip, "< 1%");
  return 0;
}
