// bench_fig9 — regenerates Figure 9: per-kernel register pressure under
// the six framework configurations (original; narrow integers; narrow
// floats at perfect / high quality; both at perfect / high quality).
// Every value is computed: range analysis -> precision tuning -> slice
// allocation.

#include <cstdio>

#include "common/thread_pool.hpp"
#include "workloads/pipeline.hpp"
#include "workloads/workload.hpp"

namespace wl = gpurf::workloads;

int main() {
  std::printf("Figure 9: register pressure per framework configuration\n");
  std::printf("%-11s %9s %9s %9s %9s %9s %9s\n", "Kernel", "Original",
              "NarrowInt", "Float(p)", "Float(h)", "Both(p)", "Both(h)");
  const auto workloads = wl::make_all_workloads();
  // Warm the per-workload pipeline memo concurrently (run_pipeline supports
  // concurrent callers via per-workload once_flags); print serially after.
  gpurf::common::parallel_for(workloads.size(), [&](size_t i) {
    wl::run_pipeline(*workloads[i]);
  });
  for (const auto& w : workloads) {
    const auto& pr = wl::run_pipeline(*w);
    std::printf("%-11s %9u %9u %9u %9u %9u %9u\n", w->spec().name.c_str(),
                pr.pressure.original, pr.pressure.narrow_int,
                pr.pressure.narrow_float_perfect,
                pr.pressure.narrow_float_high, pr.pressure.both_perfect,
                pr.pressure.both_high);
  }
  std::printf("\n(p) = perfect output quality, (h) = high output quality "
              "(SSIM 0.9 / 10%% deviation / binary-correct)\n");
  return 0;
}
