// bench_fig9 — regenerates Figure 9: per-kernel register pressure under
// the six framework configurations (original; narrow integers; narrow
// floats at perfect / high quality; both at perfect / high quality).
// Every value is computed: range analysis -> precision tuning -> slice
// allocation.
//
// Driven through one gpurf::Engine session: the warm-up fan-out uses the
// async submit_pipeline queue (bounded, engine-owned executor) and the
// printed rows read the engine's memo.

#include <cstdio>
#include <future>
#include <vector>

#include "api/engine.hpp"

namespace wl = gpurf::workloads;

int main() {
  std::printf("Figure 9: register pressure per framework configuration\n");
  std::printf("%-11s %9s %9s %9s %9s %9s %9s\n", "Kernel", "Original",
              "NarrowInt", "Float(p)", "Float(h)", "Both(p)", "Both(h)");
  gpurf::Engine engine;
  const auto names = engine.workload_names();

  // Warm the engine's pipeline memo concurrently; results print in the
  // paper's order afterwards regardless of completion order.
  std::vector<std::future<gpurf::StatusOr<wl::PipelineResult>>> warm;
  warm.reserve(names.size());
  for (const auto& n : names) warm.push_back(engine.submit_pipeline(n));
  for (auto& f : warm) f.wait();

  for (const auto& n : names) {
    auto pr = engine.pipeline(n);
    if (!pr.ok()) {
      std::fprintf(stderr, "%s\n", pr.status().to_string().c_str());
      return 1;
    }
    const auto& p = (*pr)->pressure;
    std::printf("%-11s %9u %9u %9u %9u %9u %9u\n", n.c_str(), p.original,
                p.narrow_int, p.narrow_float_perfect, p.narrow_float_high,
                p.both_perfect, p.both_high);
  }
  std::printf("\n(p) = perfect output quality, (h) = high output quality "
              "(SSIM 0.9 / 10%% deviation / binary-correct)\n");
  return 0;
}
