// bench_power — regenerates the §6.5 power-overhead argument: the
// compressed register file's dynamic read energy versus a register file of
// twice the capacity, using the double-fetch fraction measured by the
// slice allocator for each kernel.

#include <cstdio>

#include "api/engine.hpp"
#include "rf/power_model.hpp"

namespace wl = gpurf::workloads;
using gpurf::rf::AreaConfig;
using gpurf::rf::compare_power;
using gpurf::rf::PowerInputs;

int main() {
  const AreaConfig cfg = AreaConfig::fermi_gtx480();
  std::printf("Section 6.5: dynamic read energy vs. a 2x register file\n");
  std::printf("%-11s %14s %18s %14s %8s\n", "Kernel", "SplitOperands",
              "DoubleFetchFrac", "RelEnergy", "2xRF");

  gpurf::Engine engine;
  for (const auto& name : engine.workload_names()) {
    auto pr_or = engine.pipeline(name);
    if (!pr_or.ok()) {
      std::fprintf(stderr, "%s\n", pr_or.status().to_string().c_str());
      return 1;
    }
    const auto& alloc = (*pr_or)->alloc_both_high;
    // Static estimate: fraction of allocated operands that live in two
    // physical registers (every read of such an operand double-fetches).
    uint32_t operands = 0;
    for (const auto& e : alloc.table)
      if (e.valid) ++operands;
    PowerInputs in;
    in.double_fetch_fraction =
        operands == 0 ? 0.0 : double(alloc.split_operands) / operands;
    const auto out = compare_power(in, cfg);
    std::printf("%-11s %14u %17.1f%% %14.3f %8.1f\n", name.c_str(),
                alloc.split_operands, 100.0 * in.double_fetch_fraction,
                out.compressed_read_energy, out.doubled_rf_read_energy);
  }

  const auto worst = compare_power(PowerInputs{1.0, 0.1, 256.0 * 32 /
                                               (16.0 * 64 * 1024)},
                                   cfg);
  std::printf("\nWorst case (every read double-fetches): %.3f vs %.1f — "
              "the compressed design still wins (%s)\n",
              worst.compressed_read_energy, worst.doubled_rf_read_energy,
              worst.compressed_wins ? "yes" : "no");
  std::printf("Static power overhead == area fraction: %.2f%%\n",
              100.0 * worst.static_overhead_fraction);
  return 0;
}
