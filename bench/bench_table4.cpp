// bench_table4 — regenerates Table 4: the evaluated kernels with their
// quality metric, per-thread register usage (computed by our baseline
// allocator from the kernel IR) and warps per block.

#include <cstdio>

#include "alloc/slice_alloc.hpp"
#include "api/engine.hpp"

namespace wl = gpurf::workloads;

int main() {
  std::printf("Table 4: evaluated kernels\n");
  std::printf("%-11s %-12s %14s %14s %6s\n", "Name", "Quality", "Regs(paper)",
              "Regs(ours)", "Warps");
  gpurf::Engine engine;
  for (const auto& name : engine.workload_names()) {
    const wl::Workload& w = **engine.workload(name);
    const uint32_t ours = gpurf::alloc::baseline_pressure(w.kernel());
    std::printf("%-11s %-12s %14u %14u %6u\n", name.c_str(),
                std::string(metric_name(w.spec().metric)).c_str(),
                w.spec().paper_regs, ours, w.spec().warps_per_block);
  }
  return 0;
}
