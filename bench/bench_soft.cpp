// bench_soft — transient soft-error vulnerability of the compressed RF
// (PR 7 tentpole).  For each workload the same launch is simulated as the
// baseline RF and as the compressed (perfect-quality) RF under an
// identical flip-site geometry, and the bench compares how many of the
// uniformly injected bit flips each configuration exposes:
//
//   * the deterministic live-bit exposure integral (live payload bits
//     summed over every resident warp-cycle) divided by cycles gives the
//     per-cycle vulnerable cross-section — compression narrows stored
//     values, so the compressed section must not exceed the baseline one;
//   * a sampled campaign at equal flip rates reports the AVF breakdown
//     (injected / landed-on-live / masked-by-dead / architecturally
//     visible) for both configurations.
//
// Usage: bench_soft [--smoke] [--full] [workload ...]
//          default workloads: all bundled kernels, sample scale
//          --smoke: one workload, fewer seeds (cheap CI tripwire)
//          --full:  full-scale instances
//
// Invariants checked (any violation exits non-zero):
//   * flip-rate 0 reproduces the fault-free SimStats bit for bit at shard
//     counts {1, 2, 4} and reports no active flip process,
//   * an injected run (same rate, same seed) produces identical SimStats
//     at shard counts {1, 2, 4},
//   * flips_injected == flips_on_live + flips_masked_dead and
//     flips_visible <= flips_on_live in every run,
//   * flips_static_dead <= flips_masked_dead (a strike the dataflow pass
//     proves dead is always dynamically masked) and the static live-bit
//     integral upper-bounds the dynamic one, in every run (PR 9),
//   * per-cycle live-bit exposure of the compressed RF <= baseline.
//
// A run that dies with FAILED_PRECONDITION (a corrupted register fed an
// address and tripped a machine bounds check) is recorded as a DUE —
// detected unrecoverable error — point, not a bench failure, as long as
// it reproduces at every shard count.
//
// Emits BENCH_soft.json: one entry per workload with both exposure
// integrals and the per-(rate, seed) campaign points.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "api/engine.hpp"
#include "api/json.hpp"
#include "sim/gpu.hpp"
#include "workloads/pipeline.hpp"

namespace wl = gpurf::workloads;

namespace {

int usage() {
  std::fprintf(stderr, "usage: bench_soft [--smoke] [--full] [--out PATH] [workload ...]\n");
  return 2;
}

double exposure_per_cycle(const gpurf::sim::SimResult& r) {
  return r.stats.cycles ? double(r.soft.live_bit_cycles) / double(r.stats.cycles)
                        : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool full = false;
  const char* out_path = "BENCH_soft.json";
  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      smoke = true;
    else if (std::strcmp(argv[i], "--full") == 0)
      full = true;
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
    else if (argv[i][0] == '-')
      return usage();
    else
      names.push_back(argv[i]);
  }

  gpurf::Engine engine;
  if (names.empty())
    names = smoke ? std::vector<std::string>{"DWT2D"} : engine.workload_names();
  const wl::Scale scale = full ? wl::Scale::kFull : wl::Scale::kSample;
  // Accelerated rates (flips per million cycles): the RF site geometry is
  // huge relative to the live footprint, so realistic terrestrial rates
  // would never land a flip inside a sample-scale run.  Injection
  // campaigns conventionally accelerate the flux and report the AVF.
  const std::vector<double> rates = smoke
                                        ? std::vector<double>{20000.0}
                                        : std::vector<double>{10000.0, 100000.0};
  const int seeds_per_rate = smoke ? 1 : 2;
  const std::vector<int> shard_counts = {1, 2, 4};

  std::printf("bench_soft: transient soft-error vulnerability "
              "(%s scale)\n", full ? "full" : "sample");
  std::printf("%-11s %-10s %8s %8s %8s %8s %8s %9s\n", "Kernel", "config",
              "rate", "injected", "on_live", "masked", "visible", "bits/cyc");

  std::FILE* json = std::fopen(out_path, "w");
  if (json)
    std::fprintf(json, "{\n  \"scale\": \"%s\",\n  \"workloads\": [",
                 full ? "full" : "sample");

  int violations = 0;
  bool first_wl = true;
  for (const auto& name : names) {
    const struct {
      const char* label;
      wl::SimMode mode;
    } configs[2] = {{"baseline", wl::SimMode::kOriginal},
                    {"compressed", wl::SimMode::kCompressedPerfect}};

    // Fault-free references plus the deterministic exposure integral
    // (flip-rate 0 with exposure tracking executes identically to the
    // fault-free run).
    gpurf::sim::SimResult ref[2], expo[2];
    bool wl_ok = true;
    for (int c = 0; c < 2 && wl_ok; ++c) {
      gpurf::SimRequest req;
      req.mode = configs[c].mode;
      req.scale = scale;
      auto r = engine.simulate(name, req);
      if (!r.ok()) {
        std::fprintf(stderr, "bench_soft: %s (%s): %s\n", name.c_str(),
                     configs[c].label, r.status().to_string().c_str());
        ++violations;
        wl_ok = false;
        break;
      }
      ref[c] = *r;
      req.soft.track_exposure = true;
      auto e = engine.simulate(name, req);
      if (!e.ok()) {
        std::fprintf(stderr, "bench_soft: %s (%s, exposure): %s\n",
                     name.c_str(), configs[c].label,
                     e.status().to_string().c_str());
        ++violations;
        wl_ok = false;
        break;
      }
      expo[c] = *e;

      // Exposure tracking must not perturb the simulation: every SimStats
      // field except the exposure integral matches the fault-free run.
      gpurf::sim::SimStats masked = expo[c].stats;
      masked.soft_live_bit_cycles = 0;
      masked.soft_static_live_bit_cycles = 0;
      if (!(masked == ref[c].stats) || ref[c].soft.active) {
        std::fprintf(stderr,
                     "bench_soft: %s (%s): exposure run diverged from the "
                     "fault-free reference\n",
                     name.c_str(), configs[c].label);
        ++violations;
      }

      // Flip-rate 0 (no tracking) must be bit-identical to fault-free at
      // every shard count — the flip process must draw nothing.
      for (int shards : shard_counts) {
        gpurf::SimRequest z;
        z.mode = configs[c].mode;
        z.scale = scale;
        z.sim_shards = shards;
        z.soft.seed = 99;  // seed alone must not matter at rate 0
        auto zr = engine.simulate(name, z);
        if (!zr.ok() || !(zr->stats == ref[c].stats) || zr->soft.active) {
          std::fprintf(stderr,
                       "bench_soft: %s (%s): rate-0 run at %d shard(s) is "
                       "not bit-identical to fault-free\n",
                       name.c_str(), configs[c].label, shards);
          ++violations;
        }
      }
    }
    if (!wl_ok) continue;

    // The acceptance invariant: per-cycle live-bit exposure of the
    // compressed RF must not exceed the baseline's — narrowed formats
    // shrink the vulnerable cross-section at equal flip rates.
    const double base_bits = exposure_per_cycle(expo[0]);
    const double comp_bits = exposure_per_cycle(expo[1]);
    if (comp_bits > base_bits) {
      std::fprintf(stderr,
                   "bench_soft: %s: compressed exposure %.1f bits/cycle "
                   "exceeds baseline %.1f\n",
                   name.c_str(), comp_bits, base_bits);
      ++violations;
    }

    if (json) {
      std::fprintf(json,
                   "%s\n    {\"kernel\": \"%s\",\n"
                   "     \"exposure\": {\"baseline_live_bit_cycles\": %llu, "
                   "\"compressed_live_bit_cycles\": %llu, "
                   "\"baseline_bits_per_cycle\": %.2f, "
                   "\"compressed_bits_per_cycle\": %.2f},\n"
                   "     \"points\": [",
                   first_wl ? "" : ",", name.c_str(),
                   static_cast<unsigned long long>(expo[0].soft.live_bit_cycles),
                   static_cast<unsigned long long>(expo[1].soft.live_bit_cycles),
                   base_bits, comp_bits);
      first_wl = false;
    }

    // Sampled campaign: equal flip rate and identical seeds land the same
    // flip trace on both configurations' site geometry; the compressed
    // file simply occupies fewer live bits of it.
    bool first_pt = true;
    for (int c = 0; c < 2; ++c) {
      std::printf("%-11s %-10s %8s %8s %8s %8s %8s %9.1f\n", name.c_str(),
                  configs[c].label, "-", "-", "-", "-", "-",
                  exposure_per_cycle(expo[c]));
      for (double rate : rates) {
        for (int s = 0; s < seeds_per_rate; ++s) {
          gpurf::SimRequest req;
          req.mode = configs[c].mode;
          req.scale = scale;
          req.soft.flips_per_mcycle = rate;
          req.soft.seed = 1 + static_cast<uint64_t>(s);
          auto r = engine.simulate(name, req);
          if (!r.ok()) {
            // A corrupted register can feed an address and trip the
            // machine's bounds checks — a detected unrecoverable error
            // (DUE).  That is a legitimate campaign outcome, not a bench
            // failure; it only has to reproduce at every shard count.
            bool due_bad = false;
            for (int shards : shard_counts) {
              gpurf::SimRequest sreq = req;
              sreq.sim_shards = shards;
              if (engine.simulate(name, sreq).ok()) due_bad = true;
            }
            if (due_bad) ++violations;
            std::printf("%-11s %-10s %8.0f %8s %8s %8s %8s %9s   DUE: %s%s\n",
                        name.c_str(), configs[c].label, rate, "-", "-", "-",
                        "-", "-", r.status().message().c_str(),
                        due_bad ? "   <-- INVARIANT VIOLATED" : "");
            if (json) {
              std::fprintf(json,
                           "%s\n      {\"config\": \"%s\", \"rate\": %.1f, "
                           "\"seed\": %llu, \"due\": true, \"error\": \"%s\", "
                           "\"ok\": %s}",
                           first_pt ? "" : ",", configs[c].label, rate,
                           static_cast<unsigned long long>(req.soft.seed),
                           gpurf::api::JsonWriter::escape(
                               std::string(r.status().message()))
                               .c_str(),
                           due_bad ? "false" : "true");
              first_pt = false;
            }
            continue;
          }
          const auto& sft = r->soft;
          bool bad = false;
          if (sft.flips_injected !=
              sft.flips_on_live + sft.flips_masked_dead)
            bad = true;  // taxonomy must partition the injected flips
          if (sft.flips_visible > sft.flips_on_live) bad = true;
          // Static classification (PR 9): what the dataflow pass proves
          // dead is a subset of what the dynamic model masks, and the
          // static exposure integral upper-bounds the dynamic one.
          if (sft.flips_static_dead > sft.flips_masked_dead) bad = true;
          if (sft.static_live_bit_cycles < sft.live_bit_cycles) bad = true;

          // Same (rate, seed) must reproduce the identical flip trace and
          // SimStats at every shard count.
          for (int shards : shard_counts) {
            gpurf::SimRequest sreq = req;
            sreq.sim_shards = shards;
            auto sres = engine.simulate(name, sreq);
            if (!sres.ok() || !(sres->stats == r->stats) ||
                !(sres->soft == r->soft))
              bad = true;
          }
          if (bad) ++violations;

          std::printf("%-11s %-10s %8.0f %8llu %8llu %8llu %8llu %9s%s\n",
                      name.c_str(), configs[c].label, rate,
                      static_cast<unsigned long long>(sft.flips_injected),
                      static_cast<unsigned long long>(sft.flips_on_live),
                      static_cast<unsigned long long>(sft.flips_masked_dead),
                      static_cast<unsigned long long>(sft.flips_visible), "-",
                      bad ? "   <-- INVARIANT VIOLATED" : "");
          if (json) {
            std::fprintf(
                json,
                "%s\n      {\"config\": \"%s\", \"rate\": %.1f, "
                "\"seed\": %llu, \"cycles\": %llu, "
                "\"flips_injected\": %llu, \"flips_on_live\": %llu, "
                "\"flips_masked_dead\": %llu, \"flips_static_dead\": %llu, "
                "\"flips_visible\": %llu, "
                "\"static_live_bit_cycles\": %llu, "
                "\"avf\": %.6f, \"ok\": %s}",
                first_pt ? "" : ",", configs[c].label, rate,
                static_cast<unsigned long long>(req.soft.seed),
                static_cast<unsigned long long>(r->stats.cycles),
                static_cast<unsigned long long>(sft.flips_injected),
                static_cast<unsigned long long>(sft.flips_on_live),
                static_cast<unsigned long long>(sft.flips_masked_dead),
                static_cast<unsigned long long>(sft.flips_static_dead),
                static_cast<unsigned long long>(sft.flips_visible),
                static_cast<unsigned long long>(sft.static_live_bit_cycles),
                sft.avf(), bad ? "false" : "true");
            first_pt = false;
          }
        }
      }
    }
    if (json) std::fprintf(json, "\n    ]}");
  }
  if (json) {
    std::fprintf(json, "\n  ]\n}\n");
    std::fclose(json);
  }

  if (violations) {
    std::printf("\n%d invariant violation(s)\n", violations);
    return 1;
  }
  std::printf("\nall soft-error invariants hold\n");
  return 0;
}
