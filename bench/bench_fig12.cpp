// bench_fig12 — regenerates Figure 12: IPC of the proposed organisation
// (high output quality) as the writeback delay sweeps over {0, 2, 4, 8}
// cycles (§6.3).  The paper observes: flat up to 4 cycles for most
// kernels; Elevated and GICOV deteriorate (scoreboard without forwarding);
// occasional non-monotonic timing anomalies.

#include <cstdio>
#include <iterator>
#include <vector>

#include "common/thread_pool.hpp"
#include "sim/gpu.hpp"
#include "workloads/pipeline.hpp"
#include "workloads/workload.hpp"

namespace wl = gpurf::workloads;
namespace sim = gpurf::sim;

int main() {
  const sim::GpuConfig gpu = sim::GpuConfig::fermi_gtx480();
  constexpr uint32_t kDelays[] = {0, 2, 4, 8};
  constexpr size_t kNumDelays = std::size(kDelays);

  std::printf("Figure 12: IPC vs. writeback delay (high output quality)\n");
  std::printf("%-11s %8s %8s %8s %8s\n", "Kernel", "wb=0", "wb=2", "wb=4",
              "wb=8");
  // Flatten (workload x delay) into one grid of independent simulations so
  // the sweep fans out across the pool; printed in workload order after.
  const auto workloads = wl::make_all_workloads();
  std::vector<double> ipc(workloads.size() * kNumDelays, 0.0);
  gpurf::common::parallel_for(ipc.size(), [&](size_t i) {
    const auto& w = workloads[i / kNumDelays];
    const uint32_t wb = kDelays[i % kNumDelays];
    const auto& pr = wl::run_pipeline(*w);
    auto inst = w->make_instance(wl::Scale::kFull, 0);
    auto spec =
        wl::make_launch_spec(*w, inst, pr, wl::SimMode::kCompressedHigh);
    const auto cc = sim::CompressionConfig::with_writeback_delay(wb);
    ipc[i] = sim::simulate(gpu, cc, spec).stats.ipc();
  });
  for (size_t i = 0; i < workloads.size(); ++i) {
    std::printf("%-11s", workloads[i]->spec().name.c_str());
    for (size_t d = 0; d < kNumDelays; ++d)
      std::printf(" %8.0f", ipc[i * kNumDelays + d]);
    std::printf("\n");
  }
  return 0;
}
