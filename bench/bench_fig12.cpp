// bench_fig12 — regenerates Figure 12: IPC of the proposed organisation
// (high output quality) as the writeback delay sweeps over {0, 2, 4, 8}
// cycles (§6.3).  The paper observes: flat up to 4 cycles for most
// kernels; Elevated and GICOV deteriorate (scoreboard without forwarding);
// occasional non-monotonic timing anomalies.

#include <cstdio>

#include "sim/gpu.hpp"
#include "workloads/pipeline.hpp"
#include "workloads/workload.hpp"

namespace wl = gpurf::workloads;
namespace sim = gpurf::sim;

int main() {
  const sim::GpuConfig gpu = sim::GpuConfig::fermi_gtx480();
  const uint32_t delays[] = {0, 2, 4, 8};

  std::printf("Figure 12: IPC vs. writeback delay (high output quality)\n");
  std::printf("%-11s %8s %8s %8s %8s\n", "Kernel", "wb=0", "wb=2", "wb=4",
              "wb=8");
  for (const auto& w : wl::make_all_workloads()) {
    const auto& pr = wl::run_pipeline(*w);
    std::printf("%-11s", w->spec().name.c_str());
    for (uint32_t wb : delays) {
      auto inst = w->make_instance(wl::Scale::kFull, 0);
      auto spec =
          wl::make_launch_spec(*w, inst, pr, wl::SimMode::kCompressedHigh);
      const auto cc = sim::CompressionConfig::with_writeback_delay(wb);
      const auto res = sim::simulate(gpu, cc, spec);
      std::printf(" %8.0f", res.stats.ipc());
    }
    std::printf("\n");
  }
  return 0;
}
