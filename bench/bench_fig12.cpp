// bench_fig12 — regenerates Figure 12: IPC of the proposed organisation
// (high output quality) as the writeback delay sweeps over {0, 2, 4, 8}
// cycles (§6.3).  The paper observes: flat up to 4 cycles for most
// kernels; Elevated and GICOV deteriorate (scoreboard without forwarding);
// occasional non-monotonic timing anomalies.
//
// The (workload x delay) grid flattens into independent submit_simulate
// jobs with a per-job CompressionConfig override (SimRequest::compression)
// on one Engine; rows print in workload order afterwards.

#include <cstdio>
#include <future>
#include <iterator>
#include <vector>

#include "api/engine.hpp"

namespace wl = gpurf::workloads;
namespace sim = gpurf::sim;

int main() {
  constexpr uint32_t kDelays[] = {0, 2, 4, 8};
  constexpr size_t kNumDelays = std::size(kDelays);

  std::printf("Figure 12: IPC vs. writeback delay (high output quality)\n");
  std::printf("%-11s %8s %8s %8s %8s\n", "Kernel", "wb=0", "wb=2", "wb=4",
              "wb=8");
  gpurf::Engine engine;
  const auto names = engine.workload_names();
  std::vector<std::future<gpurf::StatusOr<sim::SimResult>>> futs(
      names.size() * kNumDelays);
  // Delay-major submission: the first wave touches every workload once,
  // filling the pipeline memos with minimal once-flag contention.
  for (size_t d = 0; d < kNumDelays; ++d)
    for (size_t i = 0; i < names.size(); ++i) {
      gpurf::SimRequest req;
      req.mode = wl::SimMode::kCompressedHigh;
      req.compression = sim::CompressionConfig::with_writeback_delay(kDelays[d]);
      futs[i * kNumDelays + d] = engine.submit_simulate(names[i], req);
    }
  for (size_t i = 0; i < names.size(); ++i) {
    std::printf("%-11s", names[i].c_str());
    for (size_t d = 0; d < kNumDelays; ++d) {
      auto r = futs[i * kNumDelays + d].get();
      if (!r.ok()) {
        std::fprintf(stderr, "\n%s\n", r.status().to_string().c_str());
        return 1;
      }
      std::printf(" %8.0f", r->stats.ipc());
    }
    std::printf("\n");
  }
  return 0;
}
