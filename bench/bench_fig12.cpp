// bench_fig12 — regenerates Figure 12: IPC of the proposed organisation
// (high output quality) as the writeback delay sweeps over {0, 2, 4, 8}
// cycles (§6.3).  The paper observes: flat up to 4 cycles for most
// kernels; Elevated and GICOV deteriorate (scoreboard without forwarding);
// occasional non-monotonic timing anomalies.
//
// The (workload x delay) grid flattens into independent Jobs with a
// per-job CompressionConfig override (SimRequest::compression) on one
// Engine (ISSUE 4).  The wb=0 column carries the highest priority so the
// first executed wave touches every workload once, filling the pipeline
// memos before the remaining delays fan out; rows print in workload order
// afterwards, and per-job wall times plus the Engine metrics land in
// BENCH_fig12.json.

#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

#include "api/engine.hpp"

namespace wl = gpurf::workloads;
namespace sim = gpurf::sim;

int main(int argc, char** argv) {
  const char* out_path = "BENCH_fig12.json";
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--out" && i + 1 < argc) out_path = argv[++i];
  constexpr uint32_t kDelays[] = {0, 2, 4, 8};
  constexpr size_t kNumDelays = std::size(kDelays);

  std::printf("Figure 12: IPC vs. writeback delay (high output quality)\n");
  std::printf("%-11s %8s %8s %8s %8s\n", "Kernel", "wb=0", "wb=2", "wb=4",
              "wb=8");
  gpurf::Engine engine(gpurf::EngineOptions().with_max_inflight(64));
  // Simulations run multi-SM sharded (ISSUE 5, sim_shards = thread
  // count); the writeback-delay sweep's IPC values are bit-identical to
  // the serial schedule.
  std::printf("[sim_shards=%d]\n", engine.options().sim_shards);
  const auto names = engine.workload_names();
  std::vector<gpurf::Job> jobs(names.size() * kNumDelays);
  for (size_t d = 0; d < kNumDelays; ++d)
    for (size_t i = 0; i < names.size(); ++i) {
      gpurf::SimRequest req;
      req.mode = wl::SimMode::kCompressedHigh;
      req.compression = sim::CompressionConfig::with_writeback_delay(kDelays[d]);
      jobs[i * kNumDelays + d] = engine.submit(
          gpurf::JobRequest::simulate(names[i], req)
              .with_priority(static_cast<int>(kNumDelays - 1 - d)));
    }

  std::FILE* json = std::fopen(out_path, "w");
  if (json) std::fprintf(json, "{\n  \"workloads\": [");

  for (size_t i = 0; i < names.size(); ++i) {
    std::printf("%-11s", names[i].c_str());
    if (json)
      std::fprintf(json, "%s\n    {\"kernel\": \"%s\", \"ipc\": [",
                   i ? "," : "", names[i].c_str());
    for (size_t d = 0; d < kNumDelays; ++d) {
      gpurf::Job& job = jobs[i * kNumDelays + d];
      job.wait();
      auto r = job.sim_result();
      if (!r.ok()) {
        std::fprintf(stderr, "\n%s\n", r.status().to_string().c_str());
        if (json) {
          // No file beats half a file for downstream JSON consumers.
          std::fclose(json);
          std::remove(out_path);
        }
        return 1;
      }
      std::printf(" %8.0f", r->stats.ipc());
      if (json) std::fprintf(json, "%s%.2f", d ? ", " : "", r->stats.ipc());
    }
    if (json) {
      std::fprintf(json, "], \"wall_ms\": [");
      for (size_t d = 0; d < kNumDelays; ++d)
        std::fprintf(json, "%s%.3f", d ? ", " : "",
                     jobs[i * kNumDelays + d].progress().wall_ms);
      std::fprintf(json, "]}");
    }
    std::printf("\n");
  }
  if (json) {
    std::fprintf(json, "\n  ],\n  \"sim_shards\": %d,\n  \"metrics\": %s\n}\n",
                 engine.options().sim_shards, engine.metrics_json().c_str());
    std::fclose(json);
  }
  return 0;
}
