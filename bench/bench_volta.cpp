// bench_volta — regenerates the §7 Volta scaling discussion: per
// processing block, per SM and per chip transistor overhead of the
// proposed organisation on a V100-like part.
//
//   Paper: 1.4M / processing block, 5.6M / SM, ~470M for 84 SMs,
//   just over 2 % of the 21B transistor budget.

#include <cstdio>

#include "rf/area_model.hpp"

using gpurf::rf::AreaConfig;
using gpurf::rf::compute_area;

int main() {
  const AreaConfig volta = AreaConfig::volta_v100();
  const auto a = compute_area(volta);

  std::printf("Section 7: scaling to %s\n", volta.name.c_str());
  std::printf("%-42s %12s %10s\n", "Quantity", "Transistors", "Paper");
  std::printf("%-42s %12lld %10s\n",
              "Per processing block (half the extractors)", a.per_rf_instance,
              "1.4M");
  std::printf("%-42s %12lld %10s\n", "Per SM (4 processing blocks)", a.per_sm,
              "5.6M");
  std::printf("%-42s %12lld %10s\n", "Per chip (84 SMs)", a.chip_total,
              "470M");
  std::printf("%-42s %11.2f%% %10s\n", "Fraction of 21B budget",
              100.0 * a.fraction_of_chip, "~2%");

  std::printf("\nRegister budget per thread at full occupancy: Volta "
              "64 KB RF / 2048 threads = 32 regs (paper: 31 usable) — "
              "register shortage persists, so the approach still applies.\n");
  return 0;
}
