// bench_fig11 — regenerates Figure 11: IPC increase (%) of the proposed
// register-file organisation over the baseline for perfect and high output
// quality, plus the geometric mean.  Also reports the texture-cache miss
// rates behind the GICOV/SSAO regression discussion (§6.2).

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/thread_pool.hpp"
#include "sim/gpu.hpp"
#include "workloads/pipeline.hpp"
#include "workloads/workload.hpp"

namespace wl = gpurf::workloads;
namespace sim = gpurf::sim;

int main() {
  const sim::GpuConfig gpu = sim::GpuConfig::fermi_gtx480();
  std::printf("Figure 11: IPC increase over the baseline (%%)\n");
  std::printf("%-11s %10s %12s %12s %14s %14s\n", "Kernel", "BaseIPC",
              "Perfect(%)", "High(%)", "TexMiss(base)", "TexMiss(perf)");

  // One row = one workload's pipeline + its three timing simulations;
  // rows are independent, so they fan out across the pool and print in
  // workload order afterwards (identical output to the serial loop).
  const auto workloads = wl::make_all_workloads();
  struct Row {
    sim::SimResult base, perf, high;
  };
  std::vector<Row> rows(workloads.size());
  gpurf::common::parallel_for(workloads.size(), [&](size_t i) {
    const auto& w = workloads[i];
    const auto& pr = wl::run_pipeline(*w);
    auto run = [&](wl::SimMode mode) {
      auto inst = w->make_instance(wl::Scale::kFull, 0);
      auto spec = wl::make_launch_spec(*w, inst, pr, mode);
      return sim::simulate(gpu, wl::make_compression_config(mode), spec);
    };
    rows[i] = Row{run(wl::SimMode::kOriginal),
                  run(wl::SimMode::kCompressedPerfect),
                  run(wl::SimMode::kCompressedHigh)};
  });

  double geo_p = 0.0, geo_h = 0.0;
  int n = 0;
  for (size_t i = 0; i < workloads.size(); ++i) {
    const auto& w = workloads[i];
    const auto& base = rows[i].base;
    const auto& perf = rows[i].perf;
    const auto& high = rows[i].high;

    const double dp = 100.0 * (perf.stats.ipc() / base.stats.ipc() - 1.0);
    const double dh = 100.0 * (high.stats.ipc() / base.stats.ipc() - 1.0);
    geo_p += std::log(perf.stats.ipc() / base.stats.ipc());
    geo_h += std::log(high.stats.ipc() / base.stats.ipc());
    ++n;

    std::printf("%-11s %10.0f %+11.1f %+11.1f %13.1f%% %13.1f%%\n",
                w->spec().name.c_str(), base.stats.ipc(), dp, dh,
                100.0 * base.stats.tex.miss_rate(),
                100.0 * perf.stats.tex.miss_rate());
  }
  std::printf("%-11s %10s %+11.1f %+11.1f\n", "GeoMean", "",
              100.0 * (std::exp(geo_p / n) - 1.0),
              100.0 * (std::exp(geo_h / n) - 1.0));
  std::printf("\npaper: geomean +15.75%% (perfect), +18.6%% (high); "
              "max +79%%; GICOV & SSAO regress on texture contention\n");
  return 0;
}
