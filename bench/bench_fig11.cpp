// bench_fig11 — regenerates Figure 11: IPC increase (%) of the proposed
// register-file organisation over the baseline for perfect and high output
// quality, plus the geometric mean.  Also reports the texture-cache miss
// rates behind the GICOV/SSAO regression discussion (§6.2).
//
// One row = one workload's pipeline + its three timing simulations; every
// (workload x mode) simulation is an independent submit_simulate job on
// the Engine's executor, so the whole figure fans out while results print
// in workload order (identical output to the serial loop).

#include <cmath>
#include <cstdio>
#include <future>
#include <vector>

#include "api/engine.hpp"

namespace wl = gpurf::workloads;
namespace sim = gpurf::sim;

int main() {
  gpurf::Engine engine;
  std::printf("Figure 11: IPC increase over the baseline (%%)\n");
  std::printf("%-11s %10s %12s %12s %14s %14s\n", "Kernel", "BaseIPC",
              "Perfect(%)", "High(%)", "TexMiss(base)", "TexMiss(perf)");

  const auto names = engine.workload_names();
  constexpr wl::SimMode kModes[] = {wl::SimMode::kOriginal,
                                    wl::SimMode::kCompressedPerfect,
                                    wl::SimMode::kCompressedHigh};
  // Mode-major submission order: the first wave touches every workload
  // once, so the per-workload pipeline memos fill with minimal contention
  // on their once-flags.
  std::vector<std::future<gpurf::StatusOr<sim::SimResult>>> futs(
      names.size() * 3);
  for (size_t m = 0; m < 3; ++m)
    for (size_t i = 0; i < names.size(); ++i) {
      gpurf::SimRequest req;
      req.mode = kModes[m];
      futs[i * 3 + m] = engine.submit_simulate(names[i], req);
    }

  double geo_p = 0.0, geo_h = 0.0;
  int cnt = 0;
  for (size_t i = 0; i < names.size(); ++i) {
    auto base = futs[i * 3 + 0].get();
    auto perf = futs[i * 3 + 1].get();
    auto high = futs[i * 3 + 2].get();
    if (!base.ok() || !perf.ok() || !high.ok()) {
      std::fprintf(stderr, "%s\n",
                   (!base.ok() ? base : !perf.ok() ? perf : high)
                       .status()
                       .to_string()
                       .c_str());
      return 1;
    }

    const double dp = 100.0 * (perf->stats.ipc() / base->stats.ipc() - 1.0);
    const double dh = 100.0 * (high->stats.ipc() / base->stats.ipc() - 1.0);
    geo_p += std::log(perf->stats.ipc() / base->stats.ipc());
    geo_h += std::log(high->stats.ipc() / base->stats.ipc());
    ++cnt;

    std::printf("%-11s %10.0f %+11.1f %+11.1f %13.1f%% %13.1f%%\n",
                names[i].c_str(), base->stats.ipc(), dp, dh,
                100.0 * base->stats.tex.miss_rate(),
                100.0 * perf->stats.tex.miss_rate());
  }
  std::printf("%-11s %10s %+11.1f %+11.1f\n", "GeoMean", "",
              100.0 * (std::exp(geo_p / cnt) - 1.0),
              100.0 * (std::exp(geo_h / cnt) - 1.0));
  std::printf("\npaper: geomean +15.75%% (perfect), +18.6%% (high); "
              "max +79%%; GICOV & SSAO regress on texture contention\n");
  return 0;
}
