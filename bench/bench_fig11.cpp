// bench_fig11 — regenerates Figure 11: IPC increase (%) of the proposed
// register-file organisation over the baseline for perfect and high output
// quality, plus the geometric mean.  Also reports the texture-cache miss
// rates behind the GICOV/SSAO regression discussion (§6.2).
//
// One row = one workload's pipeline + its three timing simulations; every
// (workload x mode) simulation is an independent Job on the Engine's
// executor (ISSUE 4).  Baseline jobs carry the highest priority so the
// first wave touches every workload once — filling the per-workload
// pipeline memos with minimal contention — before the compressed modes
// fan out; results print in workload order (identical output to the
// serial loop).  Per-job wall times from the Job API and the Engine's
// metrics snapshot land in BENCH_fig11.json.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "api/engine.hpp"

namespace wl = gpurf::workloads;

int main(int argc, char** argv) {
  const char* out_path = "BENCH_fig11.json";
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--out" && i + 1 < argc) out_path = argv[++i];
  gpurf::Engine engine(gpurf::EngineOptions().with_max_inflight(64));
  // Every simulate job runs the ISSUE 5 multi-SM sharded simulator on the
  // Engine's pool (sim_shards resolves to the thread count); results are
  // bit-identical to the serial schedule, only wall-clock changes.
  std::printf("Figure 11: IPC increase over the baseline (%%)  "
              "[sim_shards=%d]\n",
              engine.options().sim_shards);
  std::printf("%-11s %10s %12s %12s %14s %14s\n", "Kernel", "BaseIPC",
              "Perfect(%)", "High(%)", "TexMiss(base)", "TexMiss(perf)");

  const auto names = engine.workload_names();
  constexpr wl::SimMode kModes[] = {wl::SimMode::kOriginal,
                                    wl::SimMode::kCompressedPerfect,
                                    wl::SimMode::kCompressedHigh};
  // Priority encodes the old mode-major submission trick: the scheduler
  // runs all baseline jobs (priority 2) before perfect (1) before high
  // (0), so the first executed wave touches every workload exactly once.
  std::vector<gpurf::Job> jobs(names.size() * 3);
  for (size_t m = 0; m < 3; ++m)
    for (size_t i = 0; i < names.size(); ++i) {
      gpurf::SimRequest req;
      req.mode = kModes[m];
      jobs[i * 3 + m] = engine.submit(
          gpurf::JobRequest::simulate(names[i], req)
              .with_priority(2 - static_cast<int>(m)));
    }

  std::FILE* json = std::fopen(out_path, "w");
  if (json) std::fprintf(json, "{\n  \"workloads\": [");

  double geo_p = 0.0, geo_h = 0.0;
  int cnt = 0;
  for (size_t i = 0; i < names.size(); ++i) {
    gpurf::Job& jb = jobs[i * 3 + 0];
    gpurf::Job& jp = jobs[i * 3 + 1];
    gpurf::Job& jh = jobs[i * 3 + 2];
    jb.wait();
    jp.wait();
    jh.wait();
    auto base = jb.sim_result();
    auto perf = jp.sim_result();
    auto high = jh.sim_result();
    if (!base.ok() || !perf.ok() || !high.ok()) {
      std::fprintf(stderr, "%s\n",
                   (!base.ok() ? base : !perf.ok() ? perf : high)
                       .status()
                       .to_string()
                       .c_str());
      if (json) {
        // A truncated document would parse as garbage downstream; leave
        // no file rather than half a file.
        std::fclose(json);
        std::remove(out_path);
      }
      return 1;
    }

    const double dp = 100.0 * (perf->stats.ipc() / base->stats.ipc() - 1.0);
    const double dh = 100.0 * (high->stats.ipc() / base->stats.ipc() - 1.0);
    geo_p += std::log(perf->stats.ipc() / base->stats.ipc());
    geo_h += std::log(high->stats.ipc() / base->stats.ipc());
    ++cnt;

    std::printf("%-11s %10.0f %+11.1f %+11.1f %13.1f%% %13.1f%%\n",
                names[i].c_str(), base->stats.ipc(), dp, dh,
                100.0 * base->stats.tex.miss_rate(),
                100.0 * perf->stats.tex.miss_rate());
    if (json) {
      // Simulated cycles per second of *execution* time (exec_ms excludes
      // queue wait — with 33 jobs submitted up front, wall_ms would
      // mostly measure the queue).  See bench_sim for the explicit
      // serial-vs-sharded comparison.
      const auto cps = [](const gpurf::StatusOr<gpurf::sim::SimResult>& r,
                          gpurf::Job& j) {
        const double ms = j.progress().exec_ms;
        return ms > 0.0 ? double(r->stats.cycles) * 1000.0 / ms : 0.0;
      };
      std::fprintf(json,
                   "%s\n    {\"kernel\": \"%s\", \"base_ipc\": %.2f, "
                   "\"perfect_pct\": %.3f, \"high_pct\": %.3f, "
                   "\"wall_ms\": {\"base\": %.3f, \"perfect\": %.3f, "
                   "\"high\": %.3f}, "
                   "\"cycles_per_sec\": {\"base\": %.1f, \"perfect\": %.1f, "
                   "\"high\": %.1f}}",
                   i ? "," : "", names[i].c_str(), base->stats.ipc(), dp, dh,
                   jb.progress().wall_ms, jp.progress().wall_ms,
                   jh.progress().wall_ms, cps(base, jb), cps(perf, jp),
                   cps(high, jh));
    }
  }
  std::printf("%-11s %10s %+11.1f %+11.1f\n", "GeoMean", "",
              100.0 * (std::exp(geo_p / cnt) - 1.0),
              100.0 * (std::exp(geo_h / cnt) - 1.0));
  std::printf("\npaper: geomean +15.75%% (perfect), +18.6%% (high); "
              "max +79%%; GICOV & SSAO regress on texture contention\n");
  if (json) {
    std::fprintf(json, "\n  ],\n  \"sim_shards\": %d,\n  \"metrics\": %s\n}\n",
                 engine.options().sim_shards, engine.metrics_json().c_str());
    std::fclose(json);
  }
  return 0;
}
