// bench_tuner — end-to-end wall-time of the static compression pipeline
// (range analysis + precision tuning + slice allocation, §4.1–§4.3) under
// the parallel evaluation engine of ISSUE 1.
//
// For each workload the full pipeline is computed fresh (disk cache
// bypassed) at several engine widths — each width is its own short-lived
// gpurf::Engine, so the sweep also exercises session isolation: pools and
// caches of different widths never touch.  Width 1 forces the original
// serial greedy descent, wider runs use the speculative-batch tuner plus
// the parallel sample-variant probe.  The accepted precision maps are
// bit-identical across widths by construction (see tuner.hpp), which the
// run cross-checks.
//
// Usage: bench_tuner [workload ...]     (default: dwt2d gicov hotspot)
//        GPURF_BENCH_THREADS="1 4"      thread counts to sweep

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "api/engine.hpp"

namespace wl = gpurf::workloads;

namespace {

double run_once(const wl::Workload& w, int threads, wl::PipelineResult* out) {
  gpurf::Engine engine(gpurf::EngineOptions()
                           .with_threads(threads)
                           .with_disk_cache(false));
  const auto t0 = std::chrono::steady_clock::now();
  auto pr = engine.compute_pipeline(w);
  const auto t1 = std::chrono::steady_clock::now();
  if (out) *out = std::move(pr).value();
  return std::chrono::duration<double>(t1 - t0).count();
}

bool same_pmaps(const wl::PipelineResult& a, const wl::PipelineResult& b) {
  const auto eq = [](const gpurf::exec::PrecisionMap& x,
                     const gpurf::exec::PrecisionMap& y) {
    if (x.per_reg.size() != y.per_reg.size()) return false;
    for (size_t r = 0; r < x.per_reg.size(); ++r)
      if (!(x.per_reg[r] == y.per_reg[r])) return false;
    return true;
  };
  return eq(a.tune_perfect.pmap, b.tune_perfect.pmap) &&
         eq(a.tune_high.pmap, b.tune_high.pmap) &&
         a.pressure.both_perfect == b.pressure.both_perfect &&
         a.pressure.both_high == b.pressure.both_high;
}

std::unique_ptr<wl::Workload> make_by_name(const std::string& name) {
  for (auto& w : wl::make_all_workloads())
    if (w->spec().name == name) return std::move(w);
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) names.push_back(argv[i]);
  if (names.empty()) names = {"DWT2D", "GICOV", "Hotspot"};

  std::vector<int> threads;
  {
    const char* env = std::getenv("GPURF_BENCH_THREADS");
    std::istringstream ss(env ? env : "");
    for (int t; ss >> t;)
      if (t >= 1) threads.push_back(t);
    if (threads.empty()) {
      threads = {1, gpurf::common::default_thread_count()};
      if (threads[1] <= 1) threads[1] = 4;  // still exercise the batch path
    }
  }

  std::printf("bench_tuner: end-to-end pipeline wall-time (fresh tuning)\n");
  std::printf("%-11s", "Kernel");
  for (int t : threads) std::printf("   T=%-2d [s]", t);
  std::printf("   speedup   identical\n");

  int failures = 0;
  for (const auto& name : names) {
    auto w = make_by_name(name);
    if (!w) {
      std::printf("%-11s   unknown workload, skipped\n", name.c_str());
      continue;
    }
    std::vector<double> secs;
    wl::PipelineResult base, last;
    for (size_t i = 0; i < threads.size(); ++i) {
      wl::PipelineResult pr;
      secs.push_back(run_once(*w, threads[i], &pr));
      if (i == 0)
        base = std::move(pr);
      else
        last = std::move(pr);
    }
    const bool identical = threads.size() < 2 || same_pmaps(base, last);
    if (!identical) ++failures;

    std::printf("%-11s", name.c_str());
    for (double s : secs) std::printf("   %8.3f", s);
    std::printf("   %6.2fx   %s\n", secs.front() / secs.back(),
                identical ? "yes" : "NO <-- bug");
  }

  if (failures) {
    std::printf("\n%d workload(s) diverged between thread counts\n", failures);
    return 1;
  }
  return 0;
}
